(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (one report per table/figure, full-size workloads), after a
   Bechamel microbenchmark section timing the HFI primitives each
   experiment leans on — one Bechamel Test.make per table/figure, probing
   that experiment's hot operation in the simulator.

   Output is plain text; run `dune exec bench/main.exe`. Pass experiment
   ids (e.g. `fig3 table1`) to run a subset; pass `--quick` for reduced
   workload sizes; `--no-micro` skips the Bechamel section;
   `--micro-only` runs just that section; `--json FILE` additionally
   writes the results as JSON. Set HFI_JOBS=n to fan independent
   experiments (and the fig2/fig3 inner matrices) across n domains —
   with the default HFI_JOBS=1 the output is byte-identical to the
   historical sequential driver. Set HFI_RESULT_CACHE=1 to serve
   unchanged experiments from the persistent result cache
   (_build/.hfi-cache/); `--no-cache` bypasses it for one run.

   `--compare BASELINE.json` diffs the run against a committed bench
   JSON (wall times within a tolerance factor, deterministic key
   figures within a tight band, see Hfi_experiments.Regression) and
   exits 4 on regression; `--tolerance F` widens the timing factor
   (e.g. CI comparing across machines), and `--inject-slowdown F`
   artificially multiplies this run's timings so the gate itself can be
   tested end-to-end. *)

open Bechamel
open Toolkit
module Registry = Hfi_experiments.Registry
module Report = Hfi_experiments.Report
module Pool = Hfi_util.Pool
module Fault = Hfi_util.Fault

(* One microbenchmark per table/figure: the primitive operation whose
   cost that experiment's result turns on. *)
let micro_tests () =
  let hfi = Hfi_core.Hfi.create () in
  ignore
    (Hfi_core.Hfi.exec_set_region hfi ~slot:2
       (Hfi_isa.Hfi_iface.Implicit_data
          { base_prefix = 0x100000; lsb_mask = 0xfffff; permission_read = true; permission_write = true }));
  ignore
    (Hfi_core.Hfi.exec_set_region hfi ~slot:6
       (Hfi_isa.Hfi_iface.Explicit_data
          { base_address = 0x2_0000_0000; bound = 1 lsl 20; permission_read = true; permission_write = true; is_large_region = true }));
  let cache = Hfi_memory.Cache.create Hfi_memory.Cache.skylake_l1d in
  let mem = Hfi_memory.Addr_space.create () in
  Hfi_memory.Addr_space.mmap mem ~addr:0x10000 ~len:65536 Hfi_memory.Perm.rw;
  let kernel = Hfi_memory.Kernel.create mem in
  let spec = Hfi_isa.Hfi_iface.default_hybrid_spec in
  (* Make one page resident so the load micro measures the fast path,
     not first-touch allocation. *)
  Hfi_memory.Addr_space.store mem ~addr:0x12000 ~bytes:8 0x1122334455667788;
  [
    (* fig2/fig3: the per-access checks HFI adds to loads and hmovs. *)
    Test.make ~name:"fig2+fig3: implicit region check"
      (Staged.stage (fun () ->
           ignore (Hfi_core.Hfi.check_data_access hfi ~addr:0x100040 ~bytes:8 `Read)));
    Test.make ~name:"fig2+fig3: hmov bounds check"
      (Staged.stage (fun () ->
           ignore
             (Hfi_core.Hfi.check_hmov hfi ~region:0 ~index_value:128 ~scale:8 ~disp:16 ~bytes:8
                ~write:false)));
    (* heap-growth: one region-register update. *)
    Test.make ~name:"heap-growth: hfi_set_region"
      (Staged.stage (fun () ->
           ignore
             (Hfi_core.Hfi.exec_set_region hfi ~slot:6
                (Hfi_isa.Hfi_iface.Explicit_data
                   { base_address = 0x2_0000_0000; bound = 1 lsl 21; permission_read = true; permission_write = true; is_large_region = true }))));
    (* fig4/font/table1: a sandbox transition pair. *)
    Test.make ~name:"fig4+table1: hfi_enter/hfi_exit pair"
      (Staged.stage (fun () ->
           ignore (Hfi_core.Hfi.exec_enter hfi spec);
           ignore (Hfi_core.Hfi.exec_exit hfi)));
    (* teardown/scaling: the madvise cost path. *)
    Test.make ~name:"teardown: madvise accounting"
      (Staged.stage (fun () -> Hfi_memory.Kernel.sys_madvise_dontneed kernel ~addr:0x10000 ~len:65536));
    (* syscalls/fig5: kernel dispatch. *)
    Test.make ~name:"syscalls+fig5: kernel getpid dispatch"
      (Staged.stage (fun () -> ignore (Hfi_memory.Kernel.sys_getpid kernel)));
    (* fig7: the flush+reload probe primitive. *)
    Test.make ~name:"fig7: d-cache probe"
      (Staged.stage (fun () -> ignore (Hfi_memory.Cache.probe cache 0x4000)));
    (* memory fast path: an 8-byte load served by the one-entry VMA memo
       and page cache (the per-instruction cost of every engine). *)
    Test.make ~name:"memory: 8B resident load fast path"
      (Staged.stage (fun () -> ignore (Hfi_memory.Addr_space.load mem ~addr:0x12000 ~bytes:8)));
    (* pool: cost of fanning trivial items across the configured number
       of domains — the fixed overhead HFI_JOBS adds per batch. *)
    Test.make ~name:"pool: fan-out overhead (8 items)"
      (Staged.stage (fun () -> ignore (Pool.map (fun x -> x + 1) [ 1; 2; 3; 4; 5; 6; 7; 8 ])));
    (* cross-cutting: one full Sightglass kernel on the fast engine. *)
    Test.make ~name:"engine: gimli end-to-end (fast engine)"
      (Staged.stage (fun () ->
           let w = Hfi_workloads.Sightglass.find "gimli" in
           let i = Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi w in
           ignore (Hfi_wasm.Instance.run_fast i)));
  ]

(* Per-tier timings: the same Sightglass kernel end-to-end (fast engine)
   under each dispatch tier, so every BENCH_*.json records not just
   which tier produced it but what the other tiers would have cost. One
   warm-up round per tier charges the decode/compile caches exactly as
   a real campaign's first instantiation would. *)
module Machine = Hfi_pipeline.Machine

let tier_flags = [ ("ast", false, false); ("uop", true, false); ("block", true, true) ]

let tier_timings () =
  (* gimli: long straight-line permutation rounds, the shape the block
     tier is built for (suffixes >= min_compile_len that actually
     chain). Branch-dense kernels have 1-3 µop blocks that pin to the
     interpreter and show parity, not spread. The warm-up round's
     repeated instantiations push the round loop past the hotness
     threshold, so the measured round runs fully compiled. *)
  let w = Hfi_workloads.Sightglass.find "gimli" in
  let reps = 10 in
  let time_once () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      let i = Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi w in
      ignore (Hfi_wasm.Instance.run_fast i)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let saved_dispatch = !Machine.decode_dispatch in
  let saved_block = !Machine.block_compile in
  Fun.protect
    ~finally:(fun () ->
      Machine.decode_dispatch := saved_dispatch;
      Machine.block_compile := saved_block)
    (fun () ->
      List.map
        (fun (name, dispatch, block) ->
          Machine.decode_dispatch := dispatch;
          Machine.block_compile := block;
          ignore (time_once ());
          (* Best of three: a single round is at the mercy of the host
             scheduler and major-GC slices on shared runners. *)
          let best = ref (time_once ()) in
          for _ = 1 to 2 do
            let t = time_once () in
            if t < !best then best := t
          done;
          (name, !best))
        tier_flags)

let print_tiers tiers =
  print_endline "== dispatch tiers (gimli end-to-end, fast engine) ==";
  List.iter
    (fun (name, s) ->
      Printf.printf "  %-8s %10.1f us/run%s\n" name (s *. 1e6)
        (if name = Machine.dispatch_tier () then "   <- selected" else ""))
    tiers;
  print_newline ()

(* Prints each estimate as it lands and returns them for the JSON dump. *)
let run_micro () =
  print_endline "== Bechamel microbenchmarks (host-time of simulator primitives) ==";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            estimates := (name, Some est) :: !estimates;
            Printf.printf "  %-46s %10.1f ns/op\n%!" name est
          | _ ->
            estimates := (name, None) :: !estimates;
            Printf.printf "  %-46s (no estimate)\n%!" name)
        results)
    (micro_tests ());
  print_newline ();
  List.rev !estimates

(* Minimal JSON writer (yojson is not vendored): only what the schema
   below needs. *)
module Json = struct
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let str s = "\"" ^ escape s ^ "\""
  let num f = Printf.sprintf "%.6g" f
  let obj fields = "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"
  let arr items = "[" ^ String.concat "," items ^ "]"
end

let json_doc ~mode ~jobs ~micro ~tiers ~outcomes ~total_seconds ~cache_on =
  let micro_json =
    Json.arr
      (List.map
         (fun (name, est) ->
           Json.obj
             [
               ("name", Json.str name);
               ("ns_per_op", match est with Some e -> Json.num e | None -> "null");
             ])
         micro)
  in
  let exp_json =
    Json.arr
      (List.map
         (fun (o : Registry.outcome) ->
           let common =
             [
               ("seconds", Json.num o.Registry.seconds);
               ("wall_s", Json.num o.Registry.seconds);
               ("attempts", string_of_int o.Registry.attempts);
               ("retried", if o.Registry.retried then "true" else "false");
               ("timed_out", if o.Registry.timed_out then "true" else "false");
               ("cached", if o.Registry.cached then "true" else "false");
             ]
             @ (match o.Registry.uncached_seconds with
               | Some s -> [ ("uncached_seconds", Json.num s) ]
               | None -> [])
             @
             (* Per-experiment metric deltas (HFI_OBS=metrics); absent
                entirely when observability is off so the schema without
                it stays byte-stable. *)
             match o.Registry.metrics with
             | [] -> []
             | ms ->
               [ ("metrics", Json.obj (List.map (fun (k, v) -> (k, Json.num v)) ms)) ]
           in
           match o.Registry.result with
           | Ok r ->
             Json.obj
               ([
                  ("id", Json.str r.Report.id);
                  ("status", Json.str "ok");
                  ("title", Json.str r.Report.title);
                  ("paper_claim", Json.str r.Report.paper_claim);
                  ("verdict", Json.str r.Report.verdict);
                  ("table", Json.str r.Report.table);
                ]
               (* Machine-readable key figures (e.g. serving tail
                  latencies) — what the --compare regression gate diffs
                  besides wall time. Absent when the experiment has
                  none, keeping older-shaped entries byte-stable. *)
               @ (match r.Report.data with
                 | [] -> []
                 | data ->
                   [ ("data", Json.obj (List.map (fun (k, v) -> (k, Json.num v)) data)) ])
               @ common)
           | Error f ->
             (* Partial report: the failed entry is named, with its
                structured fault, and every other experiment's result
                is still present. *)
             Json.obj
               ([
                  ("id", Json.str o.Registry.entry.Registry.id);
                  ("status", Json.str "failed");
                  ("fault", Fault.to_json f);
                ]
               @ common))
         outcomes)
  in
  let hits = List.length (List.filter (fun o -> o.Registry.cached) outcomes) in
  let uncached_total =
    List.fold_left
      (fun acc (o : Registry.outcome) ->
        acc
        +. match o.Registry.uncached_seconds with Some s -> s | None -> o.Registry.seconds)
      0.0 outcomes
  in
  let cache_json =
    Json.obj
      [
        ("enabled", if cache_on then "true" else "false");
        ("hits", string_of_int hits);
        ("misses", string_of_int (List.length outcomes - hits));
        ("uncached_total_s", Json.num uncached_total);
        ( "speedup_vs_uncached",
          if total_seconds > 0.0 then Json.num (uncached_total /. total_seconds) else "null" );
      ]
  in
  let tiers_json =
    Json.arr
      (List.map
         (fun (name, s) ->
           Json.obj [ ("tier", Json.str name); ("seconds_per_run", Json.num s) ])
         tiers)
  in
  let doc =
    Json.obj
      [
        (* Version of this JSON layout; bump alongside
           Result_cache.schema_version when fields change shape. v5
           added [wasm_opt]; v6 added per-experiment [data] figures and
           made cached entries report the cache-probe wall time
           honestly instead of 0. *)
        ("schema_version", string_of_int 6);
        ("mode", Json.str mode);
        ("jobs", string_of_int jobs);
        (* The optimizing-middle-end configuration these numbers were
           produced under: opt-backend/opt-passes (and anything compiled
           through Instance without a pinned lowering) depend on it. *)
        ( "wasm_opt",
          Json.obj
            [
              ("enabled", if !Hfi_opt.Driver.enabled then "true" else "false");
              ( "regpressure_model",
                Json.str
                  (match Hfi_experiments.Register_pressure.model () with
                  | Hfi_experiments.Register_pressure.Allocator -> "allocator"
                  | Hfi_experiments.Register_pressure.Reserve -> "reserve") );
            ] );
        (* Which execution tier produced the numbers below, plus the
           measured cost of each tier on a reference kernel — makes
           BENCH_*.json trajectories self-describing across PRs. *)
        ("dispatch_tier", Json.str (Machine.dispatch_tier ()));
        ("tiers", tiers_json);
        ("micro", micro_json);
        ("experiments", exp_json);
        ("cache", cache_json);
        ("total_seconds", Json.num total_seconds);
      ]
  in
  doc

let write_json ~file ~doc =
  let oc = open_out file in
  output_string oc doc;
  output_char oc '\n';
  close_out oc

(* --compare BASELINE.json: diff this run against a committed baseline
   and exit 4 on regression. The comparison reads the same document we
   would write with --json, parsed back through the library reader, so
   the gate exercises exactly the committed artifact format. *)
let run_gate ~baseline_file ~doc ~tolerance ~slowdown =
  let module Regression = Hfi_experiments.Regression in
  let module Ujson = Hfi_util.Json in
  match Ujson.parse_file baseline_file with
  | Error e ->
    Printf.eprintf "bench --compare: cannot read baseline %s: %s\n" baseline_file e;
    exit 4
  | Ok baseline -> begin
    match Ujson.parse doc with
    | Error e ->
      Printf.eprintf "bench --compare: internal error parsing own output: %s\n" e;
      exit 4
    | Ok current -> begin
      let tol =
        match tolerance with
        | None -> Regression.default_tolerance
        | Some f -> { Regression.default_tolerance with Regression.timing_factor = f }
      in
      Printf.printf "\n== regression gate (baseline %s%s) ==\n" baseline_file
        (if slowdown <> 1.0 then Printf.sprintf ", injected slowdown %.2fx" slowdown
         else "");
      match Regression.compare_docs ~tol ~slowdown ~baseline ~current () with
      | Error e ->
        Printf.eprintf "bench --compare: %s\n" e;
        exit 4
      | Ok checks ->
        print_string (Regression.render checks);
        Regression.regressions checks <> []
    end
  end

let () =
  let json_file = ref None in
  let quick = ref false in
  let no_micro = ref false in
  let micro_only = ref false in
  let no_cache = ref false in
  let inject_failure = ref None in
  let compare_file = ref None in
  let tolerance = ref None in
  let inject_slowdown = ref 1.0 in
  let ids = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | "--no-micro" :: rest ->
      no_micro := true;
      parse rest
    | "--micro-only" :: rest ->
      micro_only := true;
      parse rest
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | [ "--json" ] -> failwith "--json requires a file argument"
    | "--compare" :: file :: rest ->
      compare_file := Some file;
      parse rest
    | [ "--compare" ] -> failwith "--compare requires a baseline JSON file"
    | "--tolerance" :: f :: rest ->
      (match float_of_string_opt f with
      | Some t when t >= 1.0 -> tolerance := Some t
      | _ -> failwith "--tolerance requires a factor >= 1.0");
      parse rest
    | [ "--tolerance" ] -> failwith "--tolerance requires a factor"
    | "--inject-slowdown" :: f :: rest ->
      (match float_of_string_opt f with
      | Some s when s > 0.0 -> inject_slowdown := s
      | _ -> failwith "--inject-slowdown requires a positive factor");
      parse rest
    | [ "--inject-slowdown" ] -> failwith "--inject-slowdown requires a factor"
    | "--inject-failure" :: id :: rest ->
      inject_failure := Some id;
      parse rest
    | [ "--inject-failure" ] -> failwith "--inject-failure requires an experiment id"
    | a :: rest ->
      if String.length a > 1 && a.[0] = '-' then failwith ("unknown option " ^ a);
      ids := a :: !ids;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quick = !quick in
  let ids = if !ids = [] then Registry.ids () else List.rev !ids in
  (* --inject-failure ID: force that experiment to raise, demonstrating
     the crash-containment path end-to-end (partial report, exit 3). *)
  let sabotage (e : Registry.entry) =
    if !inject_failure = Some e.Registry.id then
      {
        e with
        Registry.run = (fun ?quick:_ () -> failwith "injected failure (--inject-failure)");
      }
    else e
  in
  let jobs = Pool.default_jobs () in
  (* The result cache only ever stores clean successes, so a sabotaged
     run must bypass it both ways: a stale hit would mask the injected
     failure. *)
  let use_cache = (not !no_cache) && !inject_failure = None in
  let cache_on = use_cache && Hfi_experiments.Result_cache.enabled () in
  let micro = if !no_micro then [] else run_micro () in
  let tiers = tier_timings () in
  print_tiers tiers;
  if !micro_only then begin
    match !json_file with
    | Some file ->
      write_json ~file
        ~doc:
          (json_doc ~mode:(if quick then "quick" else "full") ~jobs ~micro ~tiers
             ~outcomes:[] ~total_seconds:0.0 ~cache_on)
    | None -> ()
  end
  else begin
    print_endline "== Paper reproduction: every table and figure of the evaluation ==";
    Printf.printf "(mode: %s)\n\n" (if quick then "quick" else "full");
    let t0 = Unix.gettimeofday () in
    let collected = ref [] in
    let emit (o : Registry.outcome) =
      (match o.Registry.result with
      | Ok r -> Report.print r
      | Error f ->
        Printf.printf "== %s: FAILED ==\nfault: %s\n" o.Registry.entry.Registry.id
          (Fault.to_string f));
      collected := o :: !collected;
      if o.Registry.cached then
        Printf.printf "[cached; uncached run took %.1fs]\n\n%!"
          (Option.value o.Registry.uncached_seconds ~default:0.0)
      else Printf.printf "[%.1fs]\n\n%!" o.Registry.seconds
    in
    if jobs <= 1 then
      (* Sequential streaming loop: byte-identical output to the
         historical driver while every experiment succeeds (and the
         result cache is off); a crashing experiment prints a FAILED
         block and the loop continues. [retries:0] keeps the historical
         run-once semantics of this path. *)
      List.iter
        (fun id ->
          match Registry.find id with
          | None ->
            Printf.printf "unknown experiment id %S (try: %s)\n" id
              (String.concat " " (Registry.ids ()))
          | Some e ->
            emit
              (Registry.run_entry ~quick ~clock:Unix.gettimeofday ~retries:0 ~use_cache
                 (sabotage e)))
        ids
    else begin
      (* Fan the known experiments across domains, then print in the
         requested order — same lines as the sequential path, only the
         bracketed per-experiment seconds (and interleaving of any
         "unknown id" lines) can differ. *)
      let entries = List.map sabotage (List.filter_map Registry.find ids) in
      let results = Registry.run_many ~jobs ~quick ~clock:Unix.gettimeofday ~use_cache entries in
      let remaining = ref results in
      List.iter
        (fun id ->
          match Registry.find id with
          | None ->
            Printf.printf "unknown experiment id %S (try: %s)\n" id
              (String.concat " " (Registry.ids ()))
          | Some _ -> begin
            match !remaining with
            | o :: rest ->
              remaining := rest;
              emit o
            | [] -> assert false (* one outcome per known id, in order *)
          end)
        ids
    end;
    let total = Unix.gettimeofday () -. t0 in
    Printf.printf "total: %.1fs\n" total;
    let outcomes = List.rev !collected in
    if cache_on then begin
      let hits = List.length (List.filter (fun o -> o.Registry.cached) outcomes) in
      let uncached_total =
        List.fold_left
          (fun acc (o : Registry.outcome) ->
            acc
            +.
            match o.Registry.uncached_seconds with Some s -> s | None -> o.Registry.seconds)
          0.0 outcomes
      in
      Printf.printf "result cache: %d hit(s), %d miss(es); wall %.1fs vs %.1fs uncached%s\n"
        hits
        (List.length outcomes - hits)
        total uncached_total
        (if total > 0.0 && hits > 0 then Printf.sprintf " (%.1fx)" (uncached_total /. total)
         else "")
    end;
    if Hfi_obs.Obs.metrics_on () then begin
      print_endline "\n== metrics (HFI_OBS) ==";
      print_string (Hfi_obs.Metrics.to_text ())
    end;
    let failures = List.filter (fun o -> Result.is_error o.Registry.result) outcomes in
    let doc =
      json_doc ~mode:(if quick then "quick" else "full") ~jobs ~micro ~tiers ~outcomes
        ~total_seconds:total ~cache_on
    in
    (match !json_file with
    | Some file -> write_json ~file ~doc
    | None -> ());
    let regressed =
      match !compare_file with
      | Some baseline_file ->
        run_gate ~baseline_file ~doc ~tolerance:!tolerance ~slowdown:!inject_slowdown
      | None -> false
    in
    if failures <> [] then begin
      Printf.eprintf "%d experiment(s) failed: %s\n" (List.length failures)
        (String.concat " " (List.map (fun o -> o.Registry.entry.Registry.id) failures));
      exit 3
    end;
    if regressed then begin
      Printf.eprintf "regression gate failed against %s\n"
        (Option.value ~default:"" !compare_file);
      exit 4
    end
  end
