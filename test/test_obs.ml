(* Observability layer: the hard invariants.

   - Off-is-identical: with every HFI_OBS subsystem forced on, the
     golden fig3 modeled-cycle pins still match bit-exactly (attribution
     and tracing never feed back into timing).
   - Determinism: two traced runs of the same seeded program emit
     identical event streams.
   - Attribution completeness: the profiler's bucket sum reconstructs
     the engine's cycle total (up to float summation order).
   - The trace ring wraps rather than grows, and the Chrome export is a
     loadable trace_event document. *)

module Obs = Hfi_obs.Obs
module Metrics = Hfi_obs.Metrics
module Trace = Hfi_obs.Trace
module Profile = Hfi_obs.Profile

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Flip the three flags for the duration of [f], restoring whatever the
   environment had set (tests must pass under HFI_OBS=1 too). *)
let with_obs ~metrics ~trace ~profile f =
  let m0 = !Obs.metrics_enabled and t0 = !Obs.trace_enabled and p0 = !Obs.profile_enabled in
  Obs.set_metrics metrics;
  Obs.set_trace trace;
  Obs.set_profile profile;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics m0;
      Obs.set_trace t0;
      Obs.set_profile p0)
    f

let run_gimli () =
  let w = Hfi_workloads.Sightglass.find "gimli" in
  let inst = Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi w in
  Hfi_wasm.Instance.run_cycle inst

(* Golden pins unchanged with all three subsystems on: observability is
   a pure read of the simulation. *)
let test_off_is_identical () =
  with_obs ~metrics:true ~trace:true ~profile:true (fun () ->
      Trace.clear ();
      let actual = Test_golden.compute () in
      List.iter2
        (fun (gb, gs, gc) (ab, as_, ac) ->
          Alcotest.(check string) "bench order" gb ab;
          Alcotest.(check string) "scheme order" gs as_;
          Alcotest.(check (float 0.0)) (Printf.sprintf "%s/%s cycles" gb gs) gc ac)
        Test_golden.golden actual;
      Trace.clear ())

let test_trace_determinism () =
  with_obs ~metrics:false ~trace:true ~profile:false (fun () ->
      Trace.clear ();
      let r1 = run_gimli () in
      let events1 = Trace.events () in
      Trace.clear ();
      let r2 = run_gimli () in
      let events2 = Trace.events () in
      Trace.clear ();
      Alcotest.(check (float 0.0)) "same cycles" r1.Hfi_pipeline.Cycle_engine.cycles
        r2.Hfi_pipeline.Cycle_engine.cycles;
      check_bool "streams non-empty" true (events1 <> []);
      check_bool "identical event streams" true (events1 = events2))

let test_trace_covers_event_kinds () =
  with_obs ~metrics:false ~trace:true ~profile:false (fun () ->
      Trace.clear ();
      ignore (run_gimli ());
      let events = Trace.events () in
      Trace.clear ();
      let has k = List.exists (fun (e : Trace.event) -> e.Trace.kind = k) events in
      check_bool "commit events" true (has Trace.Commit);
      check_bool "squash events" true (has Trace.Squash);
      check_bool "drain events" true (has Trace.Drain);
      check_bool "transition events" true (has Trace.Transition))

let test_profile_sums_to_cycles () =
  with_obs ~metrics:false ~trace:false ~profile:true (fun () ->
      Profile.(reset global);
      let r = run_gimli () in
      let total = Profile.(total global) in
      let cycles = r.Hfi_pipeline.Cycle_engine.cycles in
      Profile.(reset global);
      check_bool "bucket sum reconstructs the clock"
        true
        (Float.abs (total -. cycles) <= 1e-6 *. Float.max 1.0 cycles);
      check_bool "issue bucket populated" true (total > 0.0))

let test_profile_off_accumulates_nothing () =
  with_obs ~metrics:false ~trace:false ~profile:false (fun () ->
      Profile.(reset global);
      ignore (run_gimli ());
      Alcotest.(check (float 0.0)) "no attribution while off" 0.0 Profile.(total global))

let test_chrome_export_shape () =
  with_obs ~metrics:false ~trace:true ~profile:false (fun () ->
      Trace.clear ();
      Trace.emit Trace.Commit ~ts:1.0 ~a:7;
      Trace.emit Trace.Squash ~ts:2.0 ~dur:14.0 ~a:3;
      Trace.emit Trace.Transition ~ts:3.0 ~a:0;
      let s = Trace.to_chrome_string () in
      Trace.clear ();
      let contains sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check_bool "traceEvents array" true (contains "\"traceEvents\"");
      check_bool "instant commit" true (contains "\"ph\":\"i\"");
      check_bool "duration squash" true (contains "\"ph\":\"X\"");
      check_bool "transition named" true (contains "hfi_enter"))

let test_ring_wraps () =
  with_obs ~metrics:false ~trace:true ~profile:false (fun () ->
      Trace.set_capacity 8;
      for i = 1 to 20 do
        Trace.emit Trace.Commit ~ts:(float_of_int i) ~a:i
      done;
      let events = Trace.events () in
      check_int "capacity bounds retention" 8 (List.length events);
      check_int "overflow counted" 12 (Trace.dropped ());
      (match events with
      | first :: _ -> Alcotest.(check (float 0.0)) "oldest retained is ts=13" 13.0 first.Trace.ts
      | [] -> Alcotest.fail "ring empty");
      (* restore the default ring for any later traced test *)
      Trace.set_capacity 65536)

let test_emit_noop_when_off () =
  with_obs ~metrics:false ~trace:false ~profile:false (fun () ->
      Trace.clear ();
      Trace.emit Trace.Commit ~ts:1.0;
      check_int "nothing recorded" 0 (Trace.length ()))

let test_metrics_counters_and_delta () =
  with_obs ~metrics:true ~trace:false ~profile:false (fun () ->
      let c = Metrics.counter "test_obs_counter" ~labels:[ ("case", "delta") ] in
      let g = Metrics.gauge "test_obs_gauge" in
      let before = Metrics.snapshot () in
      Metrics.inc c;
      Metrics.add c 4;
      Metrics.set_gauge g 2.5;
      let d = Metrics.delta (Metrics.snapshot ()) before in
      Alcotest.(check (float 0.0)) "counter delta" 5.0
        (List.assoc "test_obs_counter{case=\"delta\"}" d);
      check_bool "gauge present" true (List.mem_assoc "test_obs_gauge" d);
      check_int "counter value" 5 (Metrics.value c))

let test_metrics_noop_when_off () =
  with_obs ~metrics:false ~trace:false ~profile:false (fun () ->
      let c = Metrics.counter "test_obs_counter_off" in
      Metrics.inc c;
      Metrics.add c 10;
      check_int "no increments while off" 0 (Metrics.value c))

let suite =
  [
    Alcotest.test_case "golden pins unchanged with observability on" `Quick test_off_is_identical;
    Alcotest.test_case "traced runs are deterministic" `Quick test_trace_determinism;
    Alcotest.test_case "trace covers commit/squash/drain/transition" `Quick
      test_trace_covers_event_kinds;
    Alcotest.test_case "profile buckets sum to total cycles" `Quick test_profile_sums_to_cycles;
    Alcotest.test_case "profile off accumulates nothing" `Quick test_profile_off_accumulates_nothing;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
    Alcotest.test_case "trace ring wraps at capacity" `Quick test_ring_wraps;
    Alcotest.test_case "emit is a no-op while off" `Quick test_emit_noop_when_off;
    Alcotest.test_case "metrics counters, gauges and deltas" `Quick test_metrics_counters_and_delta;
    Alcotest.test_case "metrics updates are no-ops while off" `Quick test_metrics_noop_when_off;
  ]
