open Hfi_spectre

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_pht_leaks_without_hfi () =
  let o = Attack.run Attack.Pht in
  check_bool "leak" true (Attack.attack_succeeded o.Attack.unprotected ~expected:o.Attack.secret_char)

let test_pht_blocked_with_hfi () =
  let o = Attack.run Attack.Pht in
  check_bool "no leak under HFI" true (o.Attack.protected_.Attack.leaked_byte = None)

let test_btb_leaks_without_hfi () =
  let o = Attack.run Attack.Btb in
  check_bool "leak" true (Attack.attack_succeeded o.Attack.unprotected ~expected:o.Attack.secret_char)

let test_btb_blocked_with_hfi () =
  let o = Attack.run Attack.Btb in
  check_bool "no leak under HFI" true (o.Attack.protected_.Attack.leaked_byte = None)

let test_multiple_bytes_recoverable () =
  (* The attack reads the secret byte-by-byte, as SafeSide does. *)
  String.iteri
    (fun i expected ->
      if i < 4 then begin
        let o = Attack.run ~byte_index:i Attack.Pht in
        check_bool
          (Printf.sprintf "byte %d leaks" i)
          true
          (Attack.attack_succeeded o.Attack.unprotected ~expected)
      end)
    Attack.secret

let test_probe_latencies_bimodal () =
  let o = Attack.run Attack.Pht in
  let r = o.Attack.unprotected in
  let below =
    Array.fold_left (fun n l -> if l < r.Attack.hit_threshold then n + 1 else n) 0 r.Attack.latencies
  in
  check_int "exactly one cached line" 1 below;
  check_int "256 guesses measured" 256 (Array.length r.Attack.latencies)

let test_transient_execution_observed () =
  check_bool "wrong-path instructions ran" true
    (Attack.transient_instructions Attack.Pht ~protected:false > 0)

let test_secret_is_safeside () =
  check_bool "SafeSide secret string" true (Attack.secret.[0] = 'I')

let test_exit_bypass () =
  (* SS3.4: an unserialized transient hfi_exit disables checking on the
     wrong path; serializing the sandbox entry/exit stops it. *)
  let o = Attack.run Attack.Exit_bypass in
  check_bool "unserialized sandbox leaks through transient hfi_exit" true
    (Attack.attack_succeeded o.Attack.unprotected ~expected:o.Attack.secret_char);
  check_bool "serialized sandbox blocks it" true
    (o.Attack.protected_.Attack.leaked_byte = None)

let suite =
  [
    Alcotest.test_case "PHT leaks without HFI" `Quick test_pht_leaks_without_hfi;
    Alcotest.test_case "PHT blocked with HFI" `Quick test_pht_blocked_with_hfi;
    Alcotest.test_case "BTB leaks without HFI" `Quick test_btb_leaks_without_hfi;
    Alcotest.test_case "BTB blocked with HFI" `Quick test_btb_blocked_with_hfi;
    Alcotest.test_case "multiple secret bytes" `Quick test_multiple_bytes_recoverable;
    Alcotest.test_case "probe is bimodal" `Quick test_probe_latencies_bimodal;
    Alcotest.test_case "transient execution observed" `Quick test_transient_execution_observed;
    Alcotest.test_case "secret matches SafeSide" `Quick test_secret_is_safeside;
    Alcotest.test_case "exit-bypass attack (SS3.4)" `Quick test_exit_bypass;
  ]
