open Hfi_isa
open Hfi_memory
open Hfi_core
open Hfi_pipeline

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let code_base = 0x40_0000

let setup ?(signal_handler : int option) instrs =
  let mem = Addr_space.create () in
  let kernel = Kernel.create mem in
  let hfi = Hfi.create () in
  Addr_space.mmap mem ~addr:code_base ~len:(2 * 1024 * 1024) Perm.rx;
  Addr_space.mmap mem ~addr:0x1000_0000 ~len:(1024 * 1024) Perm.rw;
  (* stack *)
  Addr_space.mmap mem ~addr:0x2000_0000 ~len:(1024 * 1024) Perm.rw;
  (* data *)
  let prog = Program.of_instrs (Array.of_list instrs) in
  let m = Machine.create ?signal_handler ~prog ~code_base ~mem ~kernel ~hfi ~entry:0 () in
  Machine.set_reg m Reg.RSP 0x100f_0000;
  m

let run m =
  let e = Fast_engine.create m in
  (Fast_engine.run e, e)

let test_arith_and_flow () =
  let open Instr in
  let m =
    setup
      [
        Mov (Reg.RAX, Imm 5);
        Alu (Add, Reg.RAX, Imm 7);
        Alu (Mul, Reg.RAX, Imm 3);
        Cmp (Reg.RAX, Imm 36);
        Jcc (Eq, 6);
        Mov (Reg.RAX, Imm (-1));
        Halt;
      ]
  in
  let status, _ = run m in
  check_bool "halted" true (status = Machine.Halted);
  check_int "36" 36 (Machine.get_reg m Reg.RAX)

let test_memory_ops () =
  let open Instr in
  let m =
    setup
      [
        Mov (Reg.RBX, Imm 0x2000_0000);
        Store (W8, Instr.mem ~base:Reg.RBX ~disp:16 (), Imm 12345);
        Load (W8, Reg.RAX, Instr.mem ~base:Reg.RBX ~disp:16 ());
        Halt;
      ]
  in
  ignore (run m);
  check_int "roundtrip" 12345 (Machine.get_reg m Reg.RAX)

let test_call_ret_stack () =
  let open Instr in
  (* 0: jmp 3 | 1: mov rax 77 | 2: ret | 3: call 1 | 4: halt *)
  let m = setup [ Jmp 3; Mov (Reg.RAX, Imm 77); Ret; Call 1; Halt ] in
  let status, _ = run m in
  check_bool "halted" true (status = Machine.Halted);
  check_int "returned" 77 (Machine.get_reg m Reg.RAX)

let test_push_pop () =
  let open Instr in
  let m =
    setup
      [ Mov (Reg.RBX, Imm 42); Push Reg.RBX; Mov (Reg.RBX, Imm 0); Pop Reg.RAX; Halt ]
  in
  ignore (run m);
  check_int "popped" 42 (Machine.get_reg m Reg.RAX)

let test_unmapped_fault_no_handler () =
  let open Instr in
  let m = setup [ Load (W8, Reg.RAX, Instr.mem ~disp:0x9999_0000 ()); Halt ] in
  let status, _ = run m in
  check_bool "faulted" true
    (match status with Machine.Faulted (Msr.Hardware_fault _) -> true | _ -> false)

let test_signal_handler_path () =
  let open Instr in
  (* handler at index 2 sets RAX=9 and halts *)
  let m =
    setup ~signal_handler:2
      [ Load (W8, Reg.RAX, Instr.mem ~disp:0x9999_0000 ()); Halt; Mov (Reg.RAX, Imm 9); Halt ]
  in
  let status, _ = run m in
  check_bool "recovered via handler" true (status = Machine.Halted);
  check_int "handler ran" 9 (Machine.get_reg m Reg.RAX);
  check_bool "signal recorded" true (Machine.last_signal m <> None)

let test_div_by_zero_faults () =
  let open Instr in
  let m = setup [ Mov (Reg.RAX, Imm 5); Mov (Reg.RBX, Imm 0); Alu (Div, Reg.RAX, Reg Reg.RBX); Halt ] in
  let status, _ = run m in
  check_bool "faulted" true (match status with Machine.Faulted _ -> true | _ -> false)

let test_syscall_via_machine () =
  let open Instr in
  let m =
    setup
      [ Mov (Reg.RAX, Imm (Syscall.number Syscall.Getpid)); Syscall; Halt ]
  in
  ignore (run m);
  check_int "getpid result" 4242 (Machine.get_reg m Reg.RAX)

let test_rdtsc_monotonic () =
  let open Instr in
  let m =
    setup
      [ Rdtsc Reg.RBX; Alu (Add, Reg.RAX, Imm 1); Alu (Add, Reg.RAX, Imm 1); Rdtsc Reg.RCX; Halt ]
  in
  let e = Cycle_engine.create m in
  ignore (Cycle_engine.run e);
  check_bool "time advances" true (Machine.get_reg m Reg.RCX > Machine.get_reg m Reg.RBX)

let test_cmp_mem () =
  let open Instr in
  let m =
    setup
      [
        Mov (Reg.RBX, Imm 0x2000_0000);
        Store (W8, Instr.mem ~base:Reg.RBX (), Imm 100);
        Mov (Reg.RAX, Imm 50);
        Cmp_mem (Reg.RAX, Instr.mem ~base:Reg.RBX ());
        Jcc (Lt, 6);
        Mov (Reg.RAX, Imm (-1));
        Halt;
      ]
  in
  ignore (run m);
  check_int "50 < [100]" 50 (Machine.get_reg m Reg.RAX)

(* Timing properties of the cycle engine. *)

let cycles_of instrs =
  let m = setup instrs in
  let e = Cycle_engine.create m in
  ignore (Cycle_engine.run e);
  Cycle_engine.cycles e

let test_serialization_costs_cycles () =
  let open Instr in
  let with_drain = cycles_of [ Nop; Cpuid; Nop; Cpuid; Nop; Halt ] in
  let without = cycles_of [ Nop; Nop; Nop; Nop; Nop; Halt ] in
  check_bool "drains cost" true (with_drain > without +. 2.0 *. float_of_int Cost.serialization_drain)

let test_dependence_chain_slower () =
  let open Instr in
  let chain =
    [ Mov (Reg.RAX, Imm 1) ]
    @ List.concat (List.init 50 (fun _ -> [ Alu (Mul, Reg.RAX, Imm 3) ]))
    @ [ Halt ]
  in
  let parallel =
    [ Mov (Reg.RAX, Imm 1) ]
    @ List.concat
        (List.init 50 (fun k -> [ Alu (Mul, Reg.all.(k mod 6), Imm 3) ]))
    @ [ Halt ]
  in
  check_bool "dependent mults slower" true (cycles_of chain > cycles_of parallel *. 1.5)

let test_mispredict_penalty () =
  let open Instr in
  (* A data-dependent unpredictable branch pattern vs a fixed one. *)
  let build flip =
    let b = Program.Asm.create () in
    let e = Program.Asm.emit b in
    e (Mov (Reg.RCX, Imm 0));
    e (Mov (Reg.R8, Imm 12345));
    Program.Asm.label b "loop";
    (if flip then begin
       (* LCG parity decides the branch: unpredictable *)
       e (Alu (Mul, Reg.R8, Imm 1103515245));
       e (Alu (Add, Reg.R8, Imm 12345));
       e (Alu (Shr, Reg.R8, Imm 7));
       e (Mov (Reg.R9, Reg Reg.R8));
       e (Alu (And, Reg.R9, Imm 1));
       e (Cmp (Reg.R9, Imm 0))
     end
     else begin
       e (Alu (Mul, Reg.R8, Imm 1103515245));
       e (Alu (Add, Reg.R8, Imm 12345));
       e (Alu (Shr, Reg.R8, Imm 7));
       e (Mov (Reg.R9, Reg Reg.R8));
       e (Alu (And, Reg.R9, Imm 1));
       e (Cmp (Reg.RCX, Imm 100000))
     end);
    let skip = Program.Asm.fresh_label b "s" in
    Program.Asm.jcc b Eq skip;
    e (Alu (Add, Reg.RAX, Imm 1));
    Program.Asm.label b skip;
    e (Alu (Add, Reg.RCX, Imm 1));
    e (Cmp (Reg.RCX, Imm 2000));
    Program.Asm.jcc b Lt "loop";
    e Halt;
    Program.Asm.assemble b
  in
  let run prog =
    let mem = Addr_space.create () in
    let kernel = Kernel.create mem in
    let hfi = Hfi.create () in
    Addr_space.mmap mem ~addr:code_base ~len:65536 Perm.rx;
    let m = Machine.create ~prog ~code_base ~mem ~kernel ~hfi ~entry:0 () in
    let e = Cycle_engine.create m in
    ignore (Cycle_engine.run e);
    (Cycle_engine.cycles e, (Cycle_engine.result e).Cycle_engine.cond_mispredicts)
  in
  let unpred_cycles, unpred_miss = run (build true) in
  let pred_cycles, pred_miss = run (build false) in
  check_bool "more mispredicts" true (unpred_miss > pred_miss + 100);
  check_bool "mispredicts cost cycles" true (unpred_cycles > pred_cycles)

let test_wrong_path_leaves_cache_footprint () =
  let open Instr in
  (* Train a branch not-taken, then flip it; the wrong path loads a
     distinctive line which must appear in the d-cache. *)
  let probe_addr = 0x2008_0000 in
  let b = Program.Asm.create () in
  let e = Program.Asm.emit b in
  e (Mov (Reg.RCX, Imm 0));
  Program.Asm.label b "loop";
  e (Cmp (Reg.RCX, Imm 1000));
  Program.Asm.jcc b Ge "oob";
  (* in-bounds path: nothing interesting *)
  e (Alu (Add, Reg.RAX, Imm 1));
  Program.Asm.jmp b "next";
  Program.Asm.label b "oob";
  (* only reached architecturally at the end; also the wrong path *)
  e (Load (W8, Reg.R9, Instr.mem ~disp:probe_addr ()));
  Program.Asm.jmp b "done";
  Program.Asm.label b "next";
  e (Alu (Add, Reg.RCX, Imm 1));
  e (Cmp (Reg.RCX, Imm 1001));
  Program.Asm.jcc b Lt "loop";
  Program.Asm.label b "done";
  e Halt;
  let prog = Program.Asm.assemble b in
  let mem = Addr_space.create () in
  let kernel = Kernel.create mem in
  let hfi = Hfi.create () in
  Addr_space.mmap mem ~addr:code_base ~len:65536 Perm.rx;
  Addr_space.mmap mem ~addr:0x2000_0000 ~len:(1024 * 1024) Perm.rw;
  let m = Machine.create ~prog ~code_base ~mem ~kernel ~hfi ~entry:0 () in
  let e = Cycle_engine.create m in
  (* Stop before the loop exit commits the architectural load: the first
     ~3000 instructions cover hundreds of in-bounds iterations, during
     which the final mispredicted iteration hasn't happened yet — but
     earlier mispredicts (loop warmup) may have speculatively fetched the
     oob load. To make it deterministic, run to completion minus the end:
     instead verify transient instructions were executed at all and the
     line is present before the architectural load would run. *)
  ignore (Cycle_engine.run ~fuel:3000 e);
  check_bool "speculation happened" true ((Cycle_engine.result e).Cycle_engine.transient_instrs > 0)

let test_speculate_respects_hfi () =
  (* Directly exercise Machine.speculate: a transient load inside the
     region produces a cache effect; outside it does not. *)
  let open Instr in
  let mem = Addr_space.create () in
  let kernel = Kernel.create mem in
  let hfi = Hfi.create () in
  Addr_space.mmap mem ~addr:code_base ~len:65536 Perm.rx;
  Addr_space.mmap mem ~addr:0x2000_0000 ~len:(1024 * 1024) Perm.rw;
  Addr_space.mmap mem ~addr:0x4000_0000 ~len:4096 Perm.rw;
  (* secret *)
  ignore
    (Hfi.exec_set_region hfi ~slot:0
       (Hfi_iface.Implicit_code { base_prefix = code_base; lsb_mask = 65535; permission_exec = true }));
  ignore
    (Hfi.exec_set_region hfi ~slot:2
       (Hfi_iface.Implicit_data
          { base_prefix = 0x2000_0000; lsb_mask = 0xfffff; permission_read = true; permission_write = true }));
  ignore (Hfi.exec_enter hfi Hfi_iface.default_hybrid_spec);
  let prog =
    Program.of_instrs
      [|
        Load (W8, Reg.RAX, Instr.mem ~disp:0x2000_0100 ());
        (* in-region *)
        Load (W8, Reg.RBX, Instr.mem ~disp:0x4000_0000 ());
        (* secret: out of region *)
        Halt;
      |]
  in
  let m = Machine.create ~prog ~code_base ~mem ~kernel ~hfi ~entry:0 () in
  let touched = ref [] in
  let effects =
    {
      Machine.spec_fetch = (fun _ -> ());
      Machine.spec_mem = (fun ~addr ~write:_ -> touched := addr :: !touched);
    }
  in
  let n = Machine.speculate m ~start:0 ~fuel:10 effects in
  check_bool "executed some" true (n >= 1);
  check_bool "in-region touched" true (List.mem 0x2000_0100 !touched);
  check_bool "secret not touched" false (List.mem 0x4000_0000 !touched)

let test_hmov_check_parallel_vs_serial () =
  (* The ablation knob: placing HFI checks after translation must cost
     cycles on an hmov-dense kernel. *)
  let w = Hfi_workloads.Sightglass.find "xchacha20" in
  let run config =
    let inst = Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi w in
    (Hfi_wasm.Instance.run_cycle ~config inst).Cycle_engine.cycles
  in
  let parallel = run Cycle_engine.skylake in
  let serial = run { Cycle_engine.skylake with Cycle_engine.hfi_checks_in_parallel = false } in
  check_bool "serial checks cost more" true (serial > parallel)

let test_engines_agree_architecturally () =
  (* Fast and cycle engines share the architectural interpreter: same
     final RAX on a nontrivial kernel. *)
  let w = Hfi_workloads.Sightglass.find "minicsv" in
  let i1 = Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi w in
  ignore (Hfi_wasm.Instance.run_fast i1);
  let i2 = Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi w in
  ignore (Hfi_wasm.Instance.run_cycle i2);
  check_int "same result" (Hfi_wasm.Instance.result_rax i1) (Hfi_wasm.Instance.result_rax i2)

let test_predictor_learns_loop () =
  let p = Predictor.create () in
  for _ = 1 to 20 do
    Predictor.update_cond p ~pc:100 ~taken:true
  done;
  check_bool "predicts taken" true (Predictor.predict_cond p ~pc:100)

let test_predictor_btb () =
  let p = Predictor.create () in
  check_bool "cold miss" true (Predictor.predict_indirect p ~pc:7 = None);
  Predictor.update_indirect p ~pc:7 ~target:42;
  check_bool "trained" true (Predictor.predict_indirect p ~pc:7 = Some 42)

let test_predictor_ras () =
  let p = Predictor.create () in
  Predictor.push_ras p 10;
  Predictor.push_ras p 20;
  check_bool "lifo" true (Predictor.pop_ras p = Some 20);
  check_bool "lifo2" true (Predictor.pop_ras p = Some 10);
  check_bool "empty" true (Predictor.pop_ras p = None)

let test_tracer () =
  let open Instr in
  let m =
    setup [ Mov (Reg.RAX, Imm 5); Alu (Add, Reg.RAX, Imm 2); Store (W8, Instr.mem ~disp:0x2000_0000 (), Reg Reg.RAX); Halt ]
  in
  let entries = Tracer.trace ~limit:10 m in
  check_int "4 committed entries recorded (incl halt)" 4 (List.length entries);
  (match entries with
  | first :: _ ->
    check_bool "records the write" true (first.Tracer.reg_writes = [ (Reg.RAX, 5) ]);
    check_bool "disassembly present" true (String.length first.Tracer.disasm > 0)
  | [] -> Alcotest.fail "no entries");
  let stores = List.filter (fun e -> e.Tracer.mem <> None) entries in
  check_int "one memory access traced" 1 (List.length stores)

let test_pp_result () =
  let w = Hfi_workloads.Sightglass.find "gimli" in
  let inst = Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi w in
  let r = Hfi_wasm.Instance.run_cycle inst in
  let s = Format.asprintf "@[<v>%a@]" Tracer.pp_result r in
  check_bool "mentions cycles" true
    (String.length s > 0
    && (let has_sub needle =
          let n = String.length s and m = String.length needle in
          let rec go i = i + m <= n && (String.sub s i m = needle || go (i + 1)) in
          go 0
        in
        has_sub "cycles" && has_sub "halted"))

let test_speculative_ifetch_gated_by_code_region () =
  (* §4.1: out-of-region transient instructions become faulting NOPs at
     decode — speculation may not even fetch them. *)
  let open Instr in
  let mem = Addr_space.create () in
  let kernel = Kernel.create mem in
  let hfi = Hfi.create () in
  Addr_space.mmap mem ~addr:code_base ~len:(2 * 1024 * 1024) Perm.rx;
  Addr_space.mmap mem ~addr:0x2000_0000 ~len:65536 Perm.rw;
  (* Code region covers only the first 64 bytes of code: instruction 20+
     is fetchable by paging but outside the HFI code region. *)
  ignore
    (Hfi.exec_set_region hfi ~slot:0
       (Hfi_iface.Implicit_code { base_prefix = code_base; lsb_mask = 63; permission_exec = true }));
  ignore
    (Hfi.exec_set_region hfi ~slot:2
       (Hfi_iface.Implicit_data
          { base_prefix = 0x2000_0000; lsb_mask = 0xffff; permission_read = true; permission_write = true }));
  ignore (Hfi.exec_enter hfi Hfi_iface.default_hybrid_spec);
  let instrs =
    Array.init 40 (fun k ->
        if k = 39 then Halt else Load (W8, Reg.RAX, Instr.mem ~disp:0x2000_0000 ()))
  in
  let prog = Program.of_instrs instrs in
  let m = Machine.create ~prog ~code_base ~mem ~kernel ~hfi ~entry:0 () in
  let fetched = ref [] in
  let effects =
    { Machine.spec_fetch = (fun a -> fetched := a :: !fetched);
      Machine.spec_mem = (fun ~addr:_ ~write:_ -> ()) }
  in
  (* In-region speculation executes; out-of-region speculation is gated. *)
  let inside = Machine.speculate m ~start:0 ~fuel:4 effects in
  let outside = Machine.speculate m ~start:30 ~fuel:4 effects in
  check_bool "in-region wrong path runs" true (inside > 0);
  check_int "out-of-region wrong path decodes nothing" 0 outside;
  check_bool "no fetch effect outside the region" true
    (List.for_all (fun a -> a < code_base + 64) !fetched)

(* Satellite: one table covering every Msr trap kind the machine can
   raise, each asserting Faulted with the exact Msr.t — and a structured
   last_fault recorded alongside it. *)
let test_trap_kinds_table () =
  let open Instr in
  let code_region =
    Hfi_iface.Implicit_code { base_prefix = code_base; lsb_mask = 0xfffff; permission_exec = true }
  in
  let data_region =
    Hfi_iface.Implicit_data
      { base_prefix = 0x2000_0000; lsb_mask = 0xffff; permission_read = true; permission_write = true }
  in
  let cases =
    [
      ( "division by zero",
        [ Mov (Reg.RAX, Imm 5); Alu (Div, Reg.RAX, Imm 0); Halt ],
        Msr.Hardware_fault 0 );
      ( "bounds violation",
        [
          Hfi_set_region (0, code_region);
          Hfi_set_region (2, data_region);
          Hfi_enter Hfi_iface.default_hybrid_spec;
          Load (W8, Reg.RAX, Instr.mem ~disp:0x5000_0000 ());
          Halt;
        ],
        Msr.Bounds_violation
          { Msr.addr = 0x5000_0000; access = Msr.Read; cause = Msr.No_matching_region } );
      ( "hardware fault (unmapped page)",
        [ Load (W8, Reg.RAX, Instr.mem ~disp:0x9999_0000 ()); Halt ],
        Msr.Hardware_fault 0x9999_0000 );
      ( "syscall trap in a native sandbox",
        [
          Hfi_set_region (0, code_region);
          Hfi_enter Hfi_iface.default_native_spec;
          Mov (Reg.RAX, Imm (Syscall.number Syscall.Getpid));
          Syscall;
          Halt;
        ],
        Msr.Syscall_trap (Syscall.number Syscall.Getpid) );
      ( "privileged HFI op in a native sandbox",
        [
          Hfi_set_region (0, code_region);
          Hfi_enter Hfi_iface.default_native_spec;
          Hfi_set_region (2, data_region);
          Halt;
        ],
        Msr.Privileged_in_native );
      ( "invalid region descriptor",
        [
          Hfi_set_region
            ( 2,
              Hfi_iface.Implicit_data
                (* base has bits inside the mask: fails validation *)
                { base_prefix = 0x2000_0100; lsb_mask = 0xffff; permission_read = true;
                  permission_write = true } );
          Halt;
        ],
        Msr.Invalid_region_descriptor );
    ]
  in
  List.iter
    (fun (name, instrs, expected) ->
      let m = setup instrs in
      let status, _ = run m in
      check_bool (name ^ ": Faulted with the exact Msr.t") true
        (status = Machine.Faulted expected);
      (* The structured fault record must be populated on every trap
         path, agree with the Msr, and carry a committed-instruction
         cycle stamp. *)
      match Machine.last_fault m with
      | None -> Alcotest.failf "%s: no structured fault recorded" name
      | Some f ->
        check_bool (name ^ ": fault kind matches Msr.to_fault") true
          (f.Hfi_util.Fault.kind = (Msr.to_fault expected).Hfi_util.Fault.kind);
        check_bool (name ^ ": modeled fault") true (Hfi_util.Fault.is_modeled f);
        check_bool (name ^ ": cycle recorded") true (f.Hfi_util.Fault.cycle <> None))
    cases

let suite =
  [
    Alcotest.test_case "trap kinds: exact Msr per kind" `Quick test_trap_kinds_table;
    Alcotest.test_case "speculative ifetch gated by code region" `Quick
      test_speculative_ifetch_gated_by_code_region;
    Alcotest.test_case "tracer records commits" `Quick test_tracer;
    Alcotest.test_case "cycle result pretty-printer" `Quick test_pp_result;
    Alcotest.test_case "arithmetic and control flow" `Quick test_arith_and_flow;
    Alcotest.test_case "memory ops" `Quick test_memory_ops;
    Alcotest.test_case "call/ret via stack" `Quick test_call_ret_stack;
    Alcotest.test_case "push/pop" `Quick test_push_pop;
    Alcotest.test_case "unmapped fault terminates" `Quick test_unmapped_fault_no_handler;
    Alcotest.test_case "signal handler recovery" `Quick test_signal_handler_path;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero_faults;
    Alcotest.test_case "syscall instruction" `Quick test_syscall_via_machine;
    Alcotest.test_case "rdtsc monotonic" `Quick test_rdtsc_monotonic;
    Alcotest.test_case "cmp with memory operand" `Quick test_cmp_mem;
    Alcotest.test_case "serialization drains cost" `Quick test_serialization_costs_cycles;
    Alcotest.test_case "dependence chains cost" `Quick test_dependence_chain_slower;
    Alcotest.test_case "mispredict penalty" `Quick test_mispredict_penalty;
    Alcotest.test_case "wrong-path execution happens" `Quick test_wrong_path_leaves_cache_footprint;
    Alcotest.test_case "speculation respects HFI regions" `Quick test_speculate_respects_hfi;
    Alcotest.test_case "parallel-check ablation" `Quick test_hmov_check_parallel_vs_serial;
    Alcotest.test_case "engines agree architecturally" `Quick test_engines_agree_architecturally;
    Alcotest.test_case "predictor learns" `Quick test_predictor_learns_loop;
    Alcotest.test_case "predictor BTB" `Quick test_predictor_btb;
    Alcotest.test_case "predictor RAS" `Quick test_predictor_ras;
  ]
