(* Serving observability: the SLO monitor, span tracing, and the bench
   regression gate.

   - Quantile estimation: linear interpolation inside the containing
     bucket, exact bucket-boundary behavior, overflow clamping to the
     last finite bound, and the degenerate empty histogram.
   - Sliding windows: advancing virtual time closes windows (evaluating
     each against the target), ring slots are recycled across long idle
     gaps, and flush evaluates the final partial windows.
   - Span traces: simulating the same campaign on 1 and 4 domains
     yields byte-identical JSONL and Chrome exports, and tracing off
     yields no spans at all.
   - Regression gate: passes against an identical document, trips on an
     injected slowdown and on data drift, and refuses documents with
     mismatched schema versions. *)

module Obs = Hfi_obs.Obs
module Slo = Hfi_obs.Slo
module Span = Hfi_obs.Span
module Server = Hfi_serving.Server
module Regression = Hfi_experiments.Regression
module Json = Hfi_util.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---- quantile estimation ---- *)

let bounds = [| 1.0; 5.0; 10.0; 25.0 |]

let test_quantile_empty () =
  check_float "empty histogram" 0.0 (Slo.quantile ~bounds ~counts:[| 0; 0; 0; 0; 0 |] 0.99)

let test_quantile_interpolates () =
  (* 10 observations in (1, 5]: rank q*10 interpolates linearly from 1. *)
  let counts = [| 0; 10; 0; 0; 0 |] in
  check_float "median of one bucket" 3.0 (Slo.quantile ~bounds ~counts 0.5);
  check_float "q=1 reaches the upper bound" 5.0 (Slo.quantile ~bounds ~counts 1.0)

let test_quantile_first_bucket_from_zero () =
  (* The first bucket's lower edge is 0, not the first bound. *)
  let counts = [| 4; 0; 0; 0; 0 |] in
  check_float "halfway into [0,1]" 0.5 (Slo.quantile ~bounds ~counts 0.5)

let test_quantile_boundary_rank () =
  (* 5 below, 5 above the 1ms bound: rank 5 lands exactly on the first
     bucket's cumulative edge, so q=0.5 reads the first bucket's top. *)
  let counts = [| 5; 5; 0; 0; 0 |] in
  check_float "rank on bucket edge" 1.0 (Slo.quantile ~bounds ~counts 0.5)

let test_quantile_overflow_clamps () =
  (* All mass in the overflow bucket: every quantile clamps to the last
     finite bound rather than inventing an upper edge. *)
  let counts = [| 0; 0; 0; 0; 7 |] in
  check_float "overflow clamps to last bound" 25.0 (Slo.quantile ~bounds ~counts 0.99)

let test_quantile_validates () =
  Alcotest.check_raises "counts/bounds mismatch"
    (Invalid_argument "Slo.quantile: counts/bounds mismatch") (fun () ->
      ignore (Slo.quantile ~bounds ~counts:[| 0; 0 |] 0.5));
  Alcotest.check_raises "q outside [0,1]"
    (Invalid_argument "Slo.quantile: q outside [0,1]") (fun () ->
      ignore (Slo.quantile ~bounds ~counts:[| 0; 0; 0; 0; 0 |] 1.5))

(* ---- sliding windows ---- *)

(* A monitor with a 100 ms p99 target: 200 ms observations violate. *)
let monitor () = Slo.create ~target:{ Slo.p50_ms = 20.0; p99_ms = 100.0; p999_ms = 500.0 } ()

let the_tenant m =
  match Slo.summary m with
  | [ s ] -> s
  | l -> Alcotest.failf "expected one tenant, got %d" (List.length l)

let test_window_advance_counts_and_violations () =
  let m = monitor () in
  (* Window 0: all fast — meets target when closed. *)
  Slo.observe m ~tenant:3 ~now_s:0.1 10.0;
  Slo.observe m ~tenant:3 ~now_s:0.2 10.0;
  (* Advancing to window 2 closes windows 0 and 1 (1 was empty). *)
  Slo.observe m ~tenant:3 ~now_s:2.5 200.0;
  let s = the_tenant m in
  check_int "two windows closed" 2 s.Slo.windows;
  check_int "fast window meets target" 0 s.Slo.violations;
  (* Flush past window 2 closes the slow window — one violation. *)
  Slo.flush m ~now_s:3.0;
  let s = the_tenant m in
  check_int "three windows closed after flush" 3 s.Slo.windows;
  check_int "slow window violates" 1 s.Slo.violations;
  check_int "all observations counted" 3 s.Slo.count

let test_window_ring_recycles_across_gap () =
  let m = monitor () in
  Slo.observe m ~tenant:0 ~now_s:0.0 200.0;
  (* Jump far past the ring size (8 windows): the slow window must be
     evaluated exactly once, not re-counted as its slot is recycled. *)
  Slo.observe m ~tenant:0 ~now_s:100.0 10.0;
  Slo.flush m ~now_s:101.0;
  let s = the_tenant m in
  check_int "one violation across the gap" 1 s.Slo.violations;
  check_int "every skipped window closed" 101 s.Slo.windows

let test_burn_rate () =
  let m = monitor () in
  (* 2 of 100 over the p99 target = 2% over a 1% budget = 2.0x burn. *)
  for i = 1 to 98 do
    Slo.observe m ~tenant:1 ~now_s:(0.001 *. float_of_int i) 10.0
  done;
  Slo.observe m ~tenant:1 ~now_s:0.099 300.0;
  Slo.observe m ~tenant:1 ~now_s:0.0995 300.0;
  Slo.flush m ~now_s:1.0;
  let s = the_tenant m in
  check_float "2% over on a 1% budget" 2.0 s.Slo.burn_rate;
  let wt, wb = Slo.worst_burn m in
  check_int "worst tenant" 1 wt;
  check_float "worst burn" 2.0 wb

let test_merge_unions_disjoint_tenants () =
  let m1 = monitor () and m2 = monitor () in
  Slo.observe m1 ~tenant:0 ~now_s:0.1 10.0;
  Slo.observe m2 ~tenant:1 ~now_s:0.1 200.0;
  Slo.flush m1 ~now_s:2.0;
  Slo.flush m2 ~now_s:2.0;
  let merged = Slo.merge [ m1; m2 ] in
  let summaries = Slo.summary merged in
  check_int "both tenants present" 2 (List.length summaries);
  check_int "violations survive the merge" 1 (Slo.total_violations merged)

(* ---- span tracing ---- *)

(* Pin both flags spans/SLO read, restoring whatever the environment
   set — the suite must pass under HFI_OBS=1 too. *)
let with_obs ~metrics ~trace f =
  let m0 = !Obs.metrics_enabled and t0 = !Obs.trace_enabled in
  Obs.set_metrics metrics;
  Obs.set_trace trace;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics m0;
      Obs.set_trace t0)
    f

(* A small chaos campaign: enough tenants for several shards, every
   hazard family live, so most span stages appear. *)
let campaign ~jobs =
  let cfg = { (Server.default Server.Chaos) with Server.tenants = 24; requests = 480 } in
  Server.simulate ~jobs cfg ~strategy:Hfi_sfi.Strategy.Hfi

let test_span_merge_deterministic_across_jobs () =
  with_obs ~metrics:false ~trace:true (fun () ->
      let r1 = campaign ~jobs:1 in
      let r4 = campaign ~jobs:4 in
      check_bool "spans recorded" true (r1.Server.spans <> []);
      let groups r = [ ("hfi", r.Server.spans) ] in
      Alcotest.(check string) "JSONL byte-identical for jobs=1 and jobs=4"
        (Span.to_jsonl_string (groups r1))
        (Span.to_jsonl_string (groups r4));
      Alcotest.(check string) "Chrome export byte-identical"
        (Span.to_chrome_string (groups r1))
        (Span.to_chrome_string (groups r4)))

let test_span_stages_covered () =
  with_obs ~metrics:false ~trace:true (fun () ->
      let r = campaign ~jobs:2 in
      let has st = List.exists (fun (s : Span.t) -> s.Span.stage = st) r.Server.spans in
      check_bool "root request spans" true (has Span.Request);
      check_bool "breaker gate spans" true (has Span.Breaker_gate);
      check_bool "admission spans" true (has Span.Admission);
      check_bool "pool spans" true (has Span.Pool);
      check_bool "execute spans" true (has Span.Execute))

let test_spans_off_by_default () =
  with_obs ~metrics:false ~trace:false (fun () ->
      let r = campaign ~jobs:2 in
      check_int "no spans with tracing off" 0 (List.length r.Server.spans);
      check_bool "no slo monitor with metrics off" true (r.Server.slo = None))

(* ---- regression gate ---- *)

let doc ~seconds ~p99 =
  Printf.sprintf
    {|{"schema_version": 6, "mode": "quick",
       "experiments": [{"id": "serve_steady", "status": "ok",
                        "seconds": %.3f, "data": {"hfi.p99_ms": %.3f}}],
       "tiers": [{"tier": "block", "seconds_per_run": 0.3}]}|}
    seconds p99

let parse s =
  match Json.parse s with
  | Ok d -> d
  | Error e -> Alcotest.failf "test JSON is malformed: %s" e

let gate ?slowdown ~baseline ~current () =
  match
    Regression.compare_docs ?slowdown ~baseline:(parse baseline) ~current:(parse current) ()
  with
  | Ok checks -> checks
  | Error e -> Alcotest.failf "gate refused comparable documents: %s" e

let test_gate_passes_identical () =
  let d = doc ~seconds:1.0 ~p99:50.0 in
  let checks = gate ~baseline:d ~current:d () in
  check_bool "checks ran" true (checks <> []);
  check_int "no regressions" 0 (List.length (Regression.regressions checks))

let test_gate_trips_on_slowdown () =
  let d = doc ~seconds:1.0 ~p99:50.0 in
  let checks = gate ~slowdown:2.0 ~baseline:d ~current:d () in
  let bad = Regression.regressions checks in
  (* Injected slowdown scales host timings only: the experiment wall
     time and the tier timing trip, the deterministic figure does not. *)
  check_int "both timing checks trip" 2 (List.length bad);
  check_bool "data figure unaffected" true
    (List.for_all (fun (c : Regression.check) -> c.Regression.metric <> "hfi.p99_ms") bad)

let test_gate_trips_on_data_drift () =
  let checks =
    gate ~baseline:(doc ~seconds:1.0 ~p99:50.0) ~current:(doc ~seconds:1.0 ~p99:55.0) ()
  in
  let bad = Regression.regressions checks in
  check_int "drifted figure trips" 1 (List.length bad);
  check_bool "it is the data check" true
    (List.exists (fun (c : Regression.check) -> c.Regression.metric = "hfi.p99_ms") bad)

let test_gate_skips_under_floor () =
  (* 10 ms baseline is under the 50 ms floor: too fast to gate. *)
  let d = doc ~seconds:0.01 ~p99:50.0 in
  let checks = gate ~slowdown:10.0 ~baseline:d ~current:d () in
  check_bool "wall-time check skipped" true
    (List.exists
       (fun (c : Regression.check) ->
         c.Regression.subject = "serve_steady" && c.Regression.status = Regression.Skipped)
       checks)

let test_gate_refuses_schema_mismatch () =
  let old = {|{"schema_version": 5, "mode": "quick", "experiments": []}|} in
  match
    Regression.compare_docs ~baseline:(parse old)
      ~current:(parse (doc ~seconds:1.0 ~p99:50.0)) ()
  with
  | Ok _ -> Alcotest.fail "gate accepted mismatched schema versions"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "quantile: empty histogram" `Quick test_quantile_empty;
    Alcotest.test_case "quantile: linear interpolation" `Quick test_quantile_interpolates;
    Alcotest.test_case "quantile: first bucket starts at 0" `Quick
      test_quantile_first_bucket_from_zero;
    Alcotest.test_case "quantile: rank on a bucket boundary" `Quick test_quantile_boundary_rank;
    Alcotest.test_case "quantile: overflow clamps to last bound" `Quick
      test_quantile_overflow_clamps;
    Alcotest.test_case "quantile: argument validation" `Quick test_quantile_validates;
    Alcotest.test_case "windows advance, close and count violations" `Quick
      test_window_advance_counts_and_violations;
    Alcotest.test_case "ring slots recycle across idle gaps" `Quick
      test_window_ring_recycles_across_gap;
    Alcotest.test_case "burn rate against the 1% budget" `Quick test_burn_rate;
    Alcotest.test_case "merge unions disjoint tenants" `Quick test_merge_unions_disjoint_tenants;
    Alcotest.test_case "span exports byte-identical for jobs=1 and jobs=4" `Quick
      test_span_merge_deterministic_across_jobs;
    Alcotest.test_case "span trace covers the request stages" `Quick test_span_stages_covered;
    Alcotest.test_case "no spans or slo monitor while off" `Quick test_spans_off_by_default;
    Alcotest.test_case "gate passes an identical document" `Quick test_gate_passes_identical;
    Alcotest.test_case "gate trips on injected slowdown" `Quick test_gate_trips_on_slowdown;
    Alcotest.test_case "gate trips on data drift" `Quick test_gate_trips_on_data_drift;
    Alcotest.test_case "gate skips timings under the floor" `Quick test_gate_skips_under_floor;
    Alcotest.test_case "gate refuses schema mismatches" `Quick test_gate_refuses_schema_mismatch;
  ]
