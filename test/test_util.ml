open Hfi_util

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_different_seeds () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next a = Prng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_prng_bounds () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in t ~min:5 ~max:8 in
    check_bool "in [5,8]" true (v >= 5 && v <= 8)
  done

let test_prng_float_range () =
  let t = Prng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.5 in
    check_bool "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_prng_copy_independent () =
  let a = Prng.create ~seed:3 in
  ignore (Prng.next a);
  let b = Prng.copy a in
  let va = Prng.next a in
  let vb = Prng.next b in
  check_int "copy continues identically" va vb

let test_prng_gaussian_moments () =
  let t = Prng.create ~seed:11 in
  let n = 20000 in
  let samples = List.init n (fun _ -> Prng.gaussian t ~mean:5.0 ~stddev:2.0) in
  let m = Stats.mean samples in
  let sd = Stats.stddev samples in
  check_bool "mean near 5" true (Float.abs (m -. 5.0) < 0.1);
  check_bool "stddev near 2" true (Float.abs (sd -. 2.0) < 0.1)

let test_prng_exponential_mean () =
  let t = Prng.create ~seed:13 in
  let samples = List.init 20000 (fun _ -> Prng.exponential t ~mean:3.0) in
  check_bool "mean near 3" true (Float.abs (Stats.mean samples -. 3.0) < 0.15)

let test_prng_shuffle_permutation () =
  let t = Prng.create ~seed:17 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_stats_mean_geomean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ] |> fun x -> x);
  check_float "empty mean" 0.0 (Stats.mean [])

let test_stats_geomean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive" (Invalid_argument "Stats.geomean: non-positive sample")
    (fun () -> ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stats_percentile () =
  let xs = List.init 101 float_of_int in
  check_float "p50" 50.0 (Stats.percentile 50.0 xs);
  check_float "p0" 0.0 (Stats.percentile 0.0 xs);
  check_float "p100" 100.0 (Stats.percentile 100.0 xs);
  check_float "p99" 99.0 (Stats.percentile 99.0 xs)

let test_stats_percentile_interpolates () =
  check_float "interpolated" 1.5 (Stats.percentile 50.0 [ 1.0; 2.0 ])

let test_stats_median_stddev () =
  check_float "median" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "stddev of constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ])

let test_latency_acc () =
  let l = Stats.Latency.create () in
  List.iter (Stats.Latency.add l) (List.init 100 (fun i -> float_of_int (i + 1)));
  check_int "count" 100 (Stats.Latency.count l);
  check_float "mean" 50.5 (Stats.Latency.mean l);
  check_bool "tail is high" true (Stats.Latency.tail l > 98.0);
  check_float "max" 100.0 (Stats.Latency.max l)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; 100.0; -5.0 ];
  let c = Stats.Histogram.counts h in
  check_int "bucket 0 (incl clamp)" 2 c.(0);
  check_int "bucket 1" 2 c.(1);
  check_int "last bucket (incl clamp)" 2 c.(9);
  check_int "total" 6 (Stats.Histogram.total h);
  check_bool "render non-empty" true (String.length (Stats.Histogram.render h ~width:20) > 0)

let test_units_bytes () =
  Alcotest.(check string) "bytes" "512 B" (Units.pp_bytes 512);
  Alcotest.(check string) "kib" "4.0 KiB" (Units.pp_bytes 4096);
  Alcotest.(check string) "gib" "8.0 GiB" (Units.pp_bytes (8 * Units.gib))

let test_units_cycles_time () =
  check_float "1 GHz-ish" 1.0 (Units.cycles_to_seconds ~hz:1e9 1e9);
  check_float "round trip" 330.0 (Units.seconds_to_cycles (Units.cycles_to_seconds 330.0));
  Alcotest.(check string) "ratio +" "+10.0%" (Units.pp_ratio 1.1);
  Alcotest.(check string) "ratio -" "-10.0%" (Units.pp_ratio 0.9)

let test_units_pp_cycles_commas () =
  Alcotest.(check string) "commas" "1,234,567" (Units.pp_cycles 1234567.0)

let test_table_render () =
  let s = Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bc"; "23" ] ] in
  check_bool "has header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  check_int "4 lines + trailing" 5 (List.length lines)

(* Fixed-bucket metric histograms (Hfi_obs): boundary values go in the
   first bucket whose upper bound is >= the sample; everything above the
   last bound lands in the overflow slot. *)
let test_obs_histogram_buckets () =
  let module Obs = Hfi_obs.Obs in
  let module Metrics = Hfi_obs.Metrics in
  let was = !Obs.metrics_enabled in
  Obs.set_metrics true;
  Fun.protect
    ~finally:(fun () -> Obs.set_metrics was)
    (fun () ->
      let h =
        Metrics.histogram "test_util_obs_hist" ~buckets:[| 1.0; 2.0; 4.0 |]
          ~labels:[ ("case", "buckets") ]
      in
      List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ];
      check_int "count" 5 (Metrics.hist_count h);
      check_float "sum" 106.0 (Metrics.hist_sum h);
      let counts = Metrics.bucket_counts h in
      check_int "bucket slots" 4 (Array.length counts);
      check_int "le=1 (0.5 and the 1.0 boundary)" 2 counts.(0);
      check_int "le=2" 1 counts.(1);
      check_int "le=4" 1 counts.(2);
      check_int "overflow" 1 counts.(3);
      (* snapshot expands the histogram into _bucket/_count/_sum rows,
         suffixed after the rendered name{labels} key *)
      let snap = Metrics.snapshot () in
      let base = "test_util_obs_hist{case=\"buckets\"}" in
      let row suffix = List.exists (fun (k, _) -> k = base ^ suffix) snap in
      check_bool "bucket row" true (row "_bucket{le=\"1\"}");
      check_bool "overflow row" true (row "_bucket{le=\"+Inf\"}");
      check_bool "count row" true (row "_count");
      check_bool "sum row" true (row "_sum"))

let test_obs_histogram_reregister_keeps_bounds () =
  let module Obs = Hfi_obs.Obs in
  let module Metrics = Hfi_obs.Metrics in
  let was = !Obs.metrics_enabled in
  Obs.set_metrics true;
  Fun.protect
    ~finally:(fun () -> Obs.set_metrics was)
    (fun () ->
      let h1 = Metrics.histogram "test_util_obs_hist2" ~buckets:[| 10.0 |] in
      let h2 = Metrics.histogram "test_util_obs_hist2" ~buckets:[| 99.0; 100.0 |] in
      Metrics.observe h1 5.0;
      check_int "same instrument" 1 (Metrics.hist_count h2);
      check_int "original bounds kept" 1 (Array.length (Metrics.bucket_bounds h2)))

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng seed sensitivity" `Quick test_prng_different_seeds;
    Alcotest.test_case "prng int bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng copy" `Quick test_prng_copy_independent;
    Alcotest.test_case "prng gaussian moments" `Quick test_prng_gaussian_moments;
    Alcotest.test_case "prng exponential mean" `Quick test_prng_exponential_mean;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "stats mean/geomean" `Quick test_stats_mean_geomean;
    Alcotest.test_case "stats geomean guard" `Quick test_stats_geomean_rejects_nonpositive;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats percentile interpolation" `Quick test_stats_percentile_interpolates;
    Alcotest.test_case "stats median/stddev" `Quick test_stats_median_stddev;
    Alcotest.test_case "latency accumulator" `Quick test_latency_acc;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "obs metric histogram buckets" `Quick test_obs_histogram_buckets;
    Alcotest.test_case "obs metric histogram re-registration" `Quick
      test_obs_histogram_reregister_keeps_bounds;
    Alcotest.test_case "units bytes" `Quick test_units_bytes;
    Alcotest.test_case "units cycles/time" `Quick test_units_cycles_time;
    Alcotest.test_case "units comma grouping" `Quick test_units_pp_cycles_commas;
    Alcotest.test_case "table render" `Quick test_table_render;
  ]
