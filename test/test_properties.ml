(* Model-based property tests: the VMA address space against a naive
   byte-map reference, the set-associative cache against a brute-force
   LRU list, and algebraic properties of core components. *)

open Hfi_memory

let check_bool = Alcotest.(check bool)

(* --- Addr_space vs a naive reference model --- *)

type ref_model = {
  perms : (int, Perm.t) Hashtbl.t;  (* page -> protection *)
  bytes : (int, int) Hashtbl.t;  (* address -> byte *)
}

let page = 4096
let arena_pages = 64
let arena_base = 0x10000

type op =
  | Op_mmap of int * int * Perm.t  (* page index, pages, perm *)
  | Op_munmap of int * int
  | Op_mprotect of int * int * Perm.t
  | Op_madvise of int * int
  | Op_store of int * int  (* byte offset in arena, value *)
  | Op_load of int

let gen_op =
  let open QCheck.Gen in
  let perm = oneofl [ Perm.none; Perm.r; Perm.rw ] in
  let range =
    map
      (fun (p, n) -> (p, Stdlib.min n (arena_pages - p)))
      (pair (int_bound (arena_pages - 1)) (int_range 1 8))
  in
  frequency
    [
      (2, map2 (fun (p, n) pr -> Op_mmap (p, n, pr)) range perm);
      (1, map (fun (p, n) -> Op_munmap (p, n)) range);
      (1, map2 (fun (p, n) pr -> Op_mprotect (p, n, pr)) range perm);
      (1, map (fun (p, n) -> Op_madvise (p, n)) range);
      (4, map2 (fun off v -> Op_store (off, v)) (int_bound ((arena_pages * page) - 9)) (int_bound 255));
      (4, map (fun off -> Op_load off) (int_bound ((arena_pages * page) - 9)));
    ]

let ref_apply m op =
  let set_pages p n perm =
    for k = p to min (arena_pages - 1) (p + n - 1) do
      Hashtbl.replace m.perms k perm
    done
  in
  let drop_bytes p n =
    let doomed =
      Hashtbl.fold
        (fun a _ acc ->
          let pg = (a - arena_base) / page in
          if pg >= p && pg < p + n then a :: acc else acc)
        m.bytes []
    in
    List.iter (Hashtbl.remove m.bytes) doomed
  in
  match op with
  | Op_mmap (p, n, perm) ->
    set_pages p n perm;
    drop_bytes p n;
    `Ok
  | Op_munmap (p, n) ->
    for k = p to min (arena_pages - 1) (p + n - 1) do
      Hashtbl.remove m.perms k
    done;
    drop_bytes p n;
    `Ok
  | Op_mprotect (p, n, perm) ->
    (* fails like ENOMEM when any page is unmapped *)
    let all_mapped = ref true in
    for k = p to min (arena_pages - 1) (p + n - 1) do
      if not (Hashtbl.mem m.perms k) then all_mapped := false
    done;
    if !all_mapped then begin
      set_pages p n perm;
      `Ok
    end
    else `Fault
  | Op_madvise (p, n) ->
    drop_bytes p n;
    `Ok
  | Op_store (off, v) ->
    let a = arena_base + off in
    let ok = ref true in
    for b = a to a + 7 do
      match Hashtbl.find_opt m.perms ((b - arena_base) / page) with
      | Some p when p.Perm.w -> ()
      | _ -> ok := false
    done;
    if !ok then begin
      for b = 0 to 7 do
        Hashtbl.replace m.bytes (a + b) ((v + b) land 0xff)
      done;
      `Ok
    end
    else `Fault
  | Op_load off ->
    let a = arena_base + off in
    let ok = ref true in
    for b = a to a + 7 do
      match Hashtbl.find_opt m.perms ((b - arena_base) / page) with
      | Some p when p.Perm.r -> ()
      | _ -> ok := false
    done;
    if !ok then begin
      let v = ref 0 in
      for b = 7 downto 0 do
        v := (!v lsl 8) lor (match Hashtbl.find_opt m.bytes (a + b) with Some x -> x | None -> 0)
      done;
      `Value !v
    end
    else `Fault

let real_apply mem op =
  try
    match op with
    | Op_mmap (p, n, perm) ->
      Addr_space.mmap mem ~addr:(arena_base + (p * page)) ~len:(n * page) perm;
      `Ok
    | Op_munmap (p, n) ->
      Addr_space.munmap mem ~addr:(arena_base + (p * page)) ~len:(n * page);
      `Ok
    | Op_mprotect (p, n, perm) ->
      Addr_space.mprotect mem ~addr:(arena_base + (p * page)) ~len:(n * page) perm;
      `Ok
    | Op_madvise (p, n) ->
      Addr_space.madvise_dontneed mem ~addr:(arena_base + (p * page)) ~len:(n * page);
      `Ok
    | Op_store (off, v) ->
      (* write the same byte pattern as the reference *)
      for b = 0 to 7 do
        Addr_space.store mem ~addr:(arena_base + off + b) ~bytes:1 ((v + b) land 0xff)
      done;
      `Ok
    | Op_load off -> `Value (Addr_space.load mem ~addr:(arena_base + off) ~bytes:8)
  with Addr_space.Fault _ -> `Fault

(* The real store is not atomic across the permission check per byte; the
   reference checks all 8 bytes first. Make them comparable by probing
   writability first on the real side too. *)
let real_apply_checked mem op =
  match op with
  | Op_store (off, _) ->
    let writable =
      List.for_all
        (fun b ->
          match Addr_space.perm_at mem (arena_base + off + b) with
          | Some p -> p.Perm.w
          | None -> false)
        (List.init 8 Fun.id)
    in
    if writable then real_apply mem op else `Fault
  | _ -> real_apply mem op

let prop_addr_space_matches_reference =
  QCheck.Test.make ~name:"addr_space agrees with a naive page/byte reference model" ~count:120
    (QCheck.make QCheck.Gen.(list_size (int_range 10 60) gen_op))
    (fun ops ->
      let mem = Addr_space.create () in
      let m = { perms = Hashtbl.create 64; bytes = Hashtbl.create 256 } in
      List.for_all
        (fun op ->
          let expected = ref_apply m op in
          let actual = real_apply_checked mem op in
          (* mprotect faults abort the ref update too: redo ref to keep in
             sync (ref_apply already only applies on success). *)
          expected = actual)
        ops)

(* --- Cache vs a brute-force LRU reference --- *)

let prop_cache_matches_lru_reference =
  QCheck.Test.make ~name:"set-associative cache matches brute-force LRU" ~count:80
    (QCheck.make QCheck.Gen.(list_size (int_range 20 200) (int_bound 4095)))
    (fun lines ->
      let cfg = { Cache.size_bytes = 16 * 64; ways = 4; line_bytes = 64; hit_latency = 1; miss_latency = 10 } in
      let sets = 4 in
      let c = Cache.create cfg in
      (* reference: per-set list of lines, most recent first *)
      let ref_sets = Array.make sets [] in
      List.for_all
        (fun line ->
          let addr = line * 64 in
          let set = line mod sets in
          let hit_ref = List.mem line ref_sets.(set) in
          let l = line :: List.filter (fun x -> x <> line) ref_sets.(set) in
          ref_sets.(set) <- (if List.length l > 4 then List.filteri (fun i _ -> i < 4) l else l);
          let hit = Cache.access c addr = `Hit in
          hit = hit_ref)
        lines)

(* --- PRNG and statistics algebra --- *)

let prop_prng_int_in_range =
  QCheck.Test.make ~name:"prng int_in stays in range" ~count:200
    QCheck.(pair small_nat (pair small_nat small_nat))
    (fun (seed, (a, b)) ->
      let min = Stdlib.min a b and max = Stdlib.max a b in
      let t = Hfi_util.Prng.create ~seed in
      let v = Hfi_util.Prng.int_in t ~min ~max in
      v >= min && v <= max)

let prop_percentile_monotonic =
  QCheck.Test.make ~name:"percentiles are monotonic" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 2 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let p25 = Hfi_util.Stats.percentile 25.0 xs in
      let p50 = Hfi_util.Stats.percentile 50.0 xs in
      let p99 = Hfi_util.Stats.percentile 99.0 xs in
      p25 <= p50 && p50 <= p99)

let prop_geomean_between_min_max =
  QCheck.Test.make ~name:"geomean lies between min and max" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (make QCheck.Gen.(float_range 0.1 100.0)))
    (fun xs ->
      let g = Hfi_util.Stats.geomean xs in
      let lo, hi = Hfi_util.Stats.min_max xs in
      g >= lo -. 1e-9 && g <= hi +. 1e-9)

(* --- instruction encoding sanity over random programs --- *)

let gen_simple_instr =
  let open QCheck.Gen in
  let reg = map (fun i -> Hfi_isa.Reg.of_index i) (int_bound 15) in
  oneof
    [
      map2 (fun d v -> Hfi_isa.Instr.Mov (d, Hfi_isa.Instr.Imm v)) reg (int_bound 100000);
      map2 (fun d s -> Hfi_isa.Instr.Alu (Hfi_isa.Instr.Add, d, Hfi_isa.Instr.Reg s)) reg reg;
      map (fun d -> Hfi_isa.Instr.Push d) reg;
      return Hfi_isa.Instr.Nop;
    ]

let prop_program_offsets_consistent =
  QCheck.Test.make ~name:"program byte offsets are cumulative instruction lengths" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 50) gen_simple_instr))
    (fun instrs ->
      let p = Hfi_isa.Program.of_instrs (Array.of_list instrs) in
      let ok = ref true in
      let acc = ref 0 in
      List.iteri
        (fun i ins ->
          if Hfi_isa.Program.byte_offset p i <> !acc then ok := false;
          (* every instruction start must be findable by byte offset *)
          if Hfi_isa.Program.index_of_byte p !acc <> Some i then ok := false;
          acc := !acc + Hfi_isa.Instr.length ins)
        instrs;
      !ok && Hfi_isa.Program.byte_size p = !acc)

(* --- HFI state-machine invariants under random operation sequences --- *)

type hfi_op =
  | H_enter of bool * bool * bool  (* hybrid, serialized, soe *)
  | H_exit
  | H_reenter
  | H_set of int
  | H_clear of int
  | H_clear_all
  | H_syscall of int
  | H_fault of int
  | H_save_restore

let gen_hfi_op =
  let open QCheck.Gen in
  frequency
    [
      (3, map3 (fun a b c -> H_enter (a, b, c)) bool bool bool);
      (3, return H_exit);
      (1, return H_reenter);
      (2, map (fun s -> H_set (s mod 20)) (int_bound 19));
      (1, map (fun s -> H_clear (s mod 20)) (int_bound 19));
      (1, return H_clear_all);
      (2, map (fun n -> H_syscall n) (int_bound 50));
      (1, map (fun a -> H_fault a) (int_bound 100000));
      (1, return H_save_restore);
    ]

let region_for_slot s =
  match Hfi_isa.Hfi_iface.slot_kind (s mod 10) with
  | `Code ->
    Hfi_isa.Hfi_iface.Implicit_code { base_prefix = 0x40_0000; lsb_mask = 0xfffff; permission_exec = true }
  | `Implicit_data ->
    Hfi_isa.Hfi_iface.Implicit_data
      { base_prefix = 0x100000; lsb_mask = 0xffff; permission_read = true; permission_write = true }
  | `Explicit_data ->
    Hfi_isa.Hfi_iface.Explicit_data
      { base_address = 1 lsl 20; bound = 1 lsl 16; permission_read = true; permission_write = true; is_large_region = true }

let prop_hfi_state_invariants =
  QCheck.Test.make ~name:"HFI state machine invariants hold under random op sequences" ~count:150
    (QCheck.make QCheck.Gen.(list_size (int_range 5 60) gen_hfi_op))
    (fun ops ->
      let open Hfi_core in
      let h = Hfi.create () in
      List.for_all
        (fun op ->
          (match op with
          | H_enter (hy, ser, soe) ->
            ignore
              (Hfi.exec_enter h
                 { Hfi_isa.Hfi_iface.is_hybrid = hy; is_serialized = ser; switch_on_exit = soe;
                   exit_handler = (if hy then None else Some 0x1000) })
          | H_exit -> ignore (Hfi.exec_exit h)
          | H_reenter -> ignore (Hfi.exec_reenter h)
          | H_set s -> ignore (Hfi.exec_set_region h ~slot:s (region_for_slot s))
          | H_clear s -> ignore (Hfi.exec_clear_region h ~slot:s)
          | H_clear_all -> ignore (Hfi.exec_clear_all h)
          | H_syscall n -> ignore (Hfi.on_syscall h ~number:n)
          | H_fault a -> Hfi.on_hardware_fault h ~addr:a
          | H_save_restore ->
            let saved = Hfi.xsave h in
            Hfi.kernel_xrstor h saved);
          (* Invariant 1: enabled implies a current spec. *)
          let inv1 = (not (Hfi.enabled h)) || Hfi.current_spec h <> None in
          (* Invariant 2: in a native sandbox, privileged ops always trap
             (probe non-destructively via get_region). *)
          let inv2 =
            (not (Hfi.in_native_sandbox h))
            || Hfi.exec_get_region h ~slot:0 = Error Msr.Privileged_in_native
          in
          (* Invariant 3: region slots only hold kind-matching regions. *)
          let inv3 =
            List.for_all
              (fun s ->
                match Hfi.region h s with
                | None -> true
                | Some (Hfi_isa.Hfi_iface.Implicit_code _) -> Hfi_isa.Hfi_iface.slot_kind s = `Code
                | Some (Hfi_isa.Hfi_iface.Implicit_data _) ->
                  Hfi_isa.Hfi_iface.slot_kind s = `Implicit_data
                | Some (Hfi_isa.Hfi_iface.Explicit_data _) ->
                  Hfi_isa.Hfi_iface.slot_kind s = `Explicit_data)
              (List.init 10 Fun.id)
          in
          (* Invariant 4: disabled state never interposes syscalls. *)
          let inv4 = Hfi.enabled h || Hfi.on_syscall h ~number:1 = `Allow in
          inv1 && inv2 && inv3 && inv4)
        ops)

let prop_xsave_restores_observables =
  QCheck.Test.make ~name:"xsave/kernel_xrstor restores observable HFI state" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 25) gen_hfi_op))
    (fun ops ->
      let open Hfi_core in
      let h = Hfi.create () in
      List.iter
        (fun op ->
          match op with
          | H_enter (hy, ser, soe) ->
            ignore
              (Hfi.exec_enter h
                 { Hfi_isa.Hfi_iface.is_hybrid = hy; is_serialized = ser; switch_on_exit = soe;
                   exit_handler = None })
          | H_exit -> ignore (Hfi.exec_exit h)
          | H_set s -> ignore (Hfi.exec_set_region h ~slot:s (region_for_slot s))
          | _ -> ())
        ops;
      let observe () =
        ( Hfi.enabled h,
          Hfi.current_spec h,
          Msr.encode (Hfi.exit_reason h),
          List.init 10 (fun s -> Hfi.region h s) )
      in
      let before = observe () in
      let saved = Hfi.xsave h in
      ignore (Hfi.exec_clear_all h);
      (if Hfi.enabled h then ignore (Hfi.exec_exit h));
      Hfi.kernel_xrstor h saved;
      observe () = before)

(* --- Multi-byte fast path vs the per-byte slow path ---

   Addr_space serves within-page multi-byte accesses with single Bytes
   reads/writes plus a one-entry VMA memo; page-straddling or faulting
   accesses take a per-byte path. These properties pin the two paths to
   identical observable behavior across page boundaries, unmapped holes
   and permission edges. *)

type mb_layout = { perm0 : Perm.t option; perm1 : Perm.t option }
(* protections of two adjacent pages; None = unmapped *)

let mb_base = 0x40000 (* page-aligned; page 0 at mb_base, page 1 above *)

let gen_mb_case =
  let open QCheck.Gen in
  let perm = oneofl [ None; Some Perm.none; Some Perm.r; Some Perm.rw ] in
  let width = oneofl [ 1; 2; 4; 8 ] in
  (* addr within +-16 bytes of the page boundary, so every width lands
     before, on, straddling, and after the edge *)
  let delta = int_range (-16) 16 in
  map2 (fun (p0, p1) (w, d) -> ({ perm0 = p0; perm1 = p1 }, w, d)) (pair perm perm)
    (pair width delta)

let mb_space layout =
  let mem = Addr_space.create () in
  (match layout.perm0 with
  | Some p -> Addr_space.mmap mem ~addr:mb_base ~len:page p
  | None -> ());
  (match layout.perm1 with
  | Some p -> Addr_space.mmap mem ~addr:(mb_base + page) ~len:page p
  | None -> ());
  mem

(* Seed the bytes around the boundary so loads see non-zero data.
   [poke] ignores permissions but faults on unmapped, so only touch
   mapped pages. *)
let mb_seed mem layout =
  for i = -16 to 15 do
    let a = mb_base + page + i in
    let mapped = if i < 0 then layout.perm0 <> None else layout.perm1 <> None in
    if mapped then Addr_space.poke mem ~addr:a ~bytes:1 ((97 + (i land 0x3f)) land 0xff)
  done

type mb_result = V of int | F of [ `Unmapped | `Protection ]

let mb_load mem ~addr ~bytes =
  try V (Addr_space.load mem ~addr ~bytes) with Addr_space.Fault f -> F f.reason

let mb_load_bytewise mem ~addr ~bytes =
  (* low byte first, like the slow path, so the fault reason comes from
     the lowest faulting byte; lsl 56 wraps mod 2^63 exactly like the
     real per-byte composition *)
  try
    let v = ref 0 in
    for i = 0 to bytes - 1 do
      v := !v lor (Addr_space.load mem ~addr:(addr + i) ~bytes:1 lsl (8 * i))
    done;
    V !v
  with Addr_space.Fault f -> F f.reason

let prop_multibyte_load_matches_bytewise =
  QCheck.Test.make ~name:"multi-byte load == per-byte loads (boundaries, holes, perms)" ~count:500
    (QCheck.make gen_mb_case) (fun (layout, bytes, delta) ->
      let mem = mb_space layout in
      mb_seed mem layout;
      let addr = mb_base + page + delta - (bytes / 2) in
      let fast = mb_load mem ~addr ~bytes in
      (* fresh space for the byte-wise side so memo/cache state cannot
         leak between the two measurements *)
      let mem2 = mb_space layout in
      mb_seed mem2 layout;
      let slow = mb_load_bytewise mem2 ~addr ~bytes in
      match (fast, slow) with
      | V a, V b -> a = b
      | F a, F b -> a = b
      | _ -> false)

let prop_multibyte_store_matches_bytewise =
  QCheck.Test.make ~name:"multi-byte store == per-byte stores (boundaries, holes, perms)"
    ~count:500
    (QCheck.make QCheck.Gen.(pair gen_mb_case (int_bound ((1 lsl 30) - 1))))
    (fun ((layout, bytes, delta), value) ->
      let addr = mb_base + page + delta - (bytes / 2) in
      let mem_fast = mb_space layout in
      let mem_slow = mb_space layout in
      let fast =
        try
          Addr_space.store mem_fast ~addr ~bytes value;
          `Ok
        with Addr_space.Fault f -> `F f.reason
      in
      let slow =
        try
          for i = 0 to bytes - 1 do
            Addr_space.store mem_slow ~addr:(addr + i) ~bytes:1 ((value lsr (8 * i)) land 0xff)
          done;
          `Ok
        with Addr_space.Fault f -> `F f.reason
      in
      match (fast, slow) with
      | `Ok, `Ok ->
        (* identical resulting bytes, read back without permission checks *)
        List.for_all
          (fun i ->
            Addr_space.peek mem_fast ~addr:(addr + i) ~bytes:1
            = Addr_space.peek mem_slow ~addr:(addr + i) ~bytes:1)
          (List.init bytes Fun.id)
      | `F a, `F b -> a = b
      | _ -> false)

let prop_load_after_remap_sees_new_mapping =
  (* The one-entry VMA memo and page cache must be invalidated by every
     mapping mutation: exercise load / munmap / load and load / mprotect
     / load sequences at the same address. *)
  QCheck.Test.make ~name:"fast-path caches invalidated by munmap/mprotect/madvise" ~count:200
    (QCheck.make QCheck.Gen.(oneofl [ `Munmap; `Mprotect_ro; `Madvise ]))
    (fun mutation ->
      let mem = Addr_space.create () in
      Addr_space.mmap mem ~addr:mb_base ~len:page Perm.rw;
      let addr = mb_base + 128 in
      Addr_space.store mem ~addr ~bytes:8 0x1234_5678;
      let warm = Addr_space.load mem ~addr ~bytes:8 in
      if warm <> 0x1234_5678 then false
      else begin
        match mutation with
        | `Munmap ->
          Addr_space.munmap mem ~addr:mb_base ~len:page;
          (try
             ignore (Addr_space.load mem ~addr ~bytes:8);
             false
           with Addr_space.Fault f -> f.reason = `Unmapped)
        | `Mprotect_ro ->
          Addr_space.mprotect mem ~addr:mb_base ~len:page Perm.r;
          (try
             Addr_space.store mem ~addr ~bytes:8 1;
             false
           with Addr_space.Fault f -> f.reason = `Protection)
        | `Madvise ->
          Addr_space.madvise_dontneed mem ~addr:mb_base ~len:page;
          Addr_space.load mem ~addr ~bytes:8 = 0
      end)

(* --- Relational verifier domain: soundness of join and widening --- *)

module VDomain = Hfi_opt.Domain
module VRel = Hfi_verify.Rel
module VReg = Hfi_isa.Reg

(* Interval join soundness: any concrete point of either side is
   denoted by the join. Points are sampled from the operand bounds. *)
let prop_domain_join_sound =
  let open QCheck.Gen in
  let gen_itv =
    map2
      (fun a b -> VDomain.itv (Stdlib.min a b) (Stdlib.max a b))
      (int_range (-10_000) 10_000)
      (int_range (-10_000) 10_000)
  in
  QCheck.Test.make ~name:"verifier join denotes both operands" ~count:300
    (QCheck.make (pair gen_itv gen_itv))
    (fun (a, b) ->
      let j = VDomain.join a b in
      let covers d =
        match (VDomain.bounds d, VDomain.bounds j) with
        | Some (lo, hi), Some (jlo, jhi) -> jlo <= lo && hi <= jhi
        | _, None -> true (* top covers everything *)
        | None, _ -> false
      in
      covers a && covers b)

(* Fact-join soundness, the relational analogue: feed the join two
   concrete states (every register a singleton). If it births a fact
   [r = k*base + [lo,hi]], both concrete states must satisfy it. *)
let prop_fact_join_sound =
  let open QCheck.Gen in
  let gen_state = pair (int_range (-1000) 1000) (int_range (-1000) 1000) in
  QCheck.Test.make ~name:"inferred affine facts hold in both join inputs" ~count:300
    (QCheck.make (pair gen_state gen_state))
    (fun (((w1, v1), (w2, v2))) ->
      let base = VReg.index VReg.RCX and r = VReg.index VReg.RDI in
      let mk w v =
        Array.init VReg.count (fun i ->
            if i = base then VDomain.const w
            else if i = r then VDomain.const v
            else VDomain.const 0)
      in
      let no_facts () = Array.make VReg.count None in
      match VRel.join_facts r (no_facts ()) (mk w1 v1) (no_facts ()) (mk w2 v2) with
      | None -> true
      | Some f ->
        f.VRel.base = base
        && f.VRel.k <> 0
        && abs f.VRel.k <= VRel.max_k
        && v1 - (f.VRel.k * w1) >= f.VRel.lo
        && v1 - (f.VRel.k * w1) <= f.VRel.hi
        && v2 - (f.VRel.k * w2) >= f.VRel.lo
        && v2 - (f.VRel.k * w2) <= f.VRel.hi)

(* Threshold widening terminates: an adversarial strictly-growing chain
   of intervals reaches a fixpoint within |thresholds| + 2 steps (each
   bound can climb each rung once, then jumps to infinity), and every
   step covers its input (widening is an upper bound). *)
let prop_threshold_widening_terminates =
  let open QCheck.Gen in
  let gen_thresholds =
    map
      (fun l -> Array.of_list (List.sort_uniq compare l))
      (list_size (int_range 0 8) (int_range (-5000) 5000))
  in
  QCheck.Test.make ~name:"threshold widening chains terminate and cover" ~count:200
    (QCheck.make (pair gen_thresholds (list_size (int_range 1 40) (int_range 1 500))))
    (fun (thresholds, grows) ->
      let state = ref (VDomain.itv 0 0) in
      let steps = ref 0 in
      let budget = Array.length thresholds + 2 in
      let ok = ref true in
      List.iter
        (fun g ->
          let next =
            match VDomain.bounds !state with
            | Some (lo, hi) -> VDomain.itv (lo - g) (hi + g)
            | None -> VDomain.top
          in
          let w = VRel.widen_dom ~thresholds !state next in
          (* upper bound: the widened value covers both arguments *)
          if not (VRel.leq_dom !state w && VRel.leq_dom next w) then ok := false;
          if not (VDomain.equal w !state) then begin
            incr steps;
            state := w
          end)
        grows;
      (* two rungs per bound direction cannot exceed the ladder budget *)
      !ok && !steps <= (2 * budget))

(* --- Proof artifacts: negative controls --- *)

module VChecks = Hfi_verify.Checks
module VProof = Hfi_verify.Proof
module VProofcheck = Hfi_verify.Proofcheck
module VVstate = Hfi_verify.Vstate

let proofcheck_rejects name p w =
  match VProofcheck.check_workload ~strategy:Hfi_sfi.Strategy.Guard_pages w p with
  | VProofcheck.Rejected _ -> ()
  | VProofcheck.Accepted -> Alcotest.failf "%s accepted" name

(* A proof whose invariants were tampered with — here the loop head's
   entry invariant shrunk below what the entry edge contributes — must
   be rejected by the independent checker. *)
let test_proof_tampered_invariant () =
  let w = Hfi_workloads.Sightglass.find "sieve" in
  let _, p = VChecks.verify_workload_with_proof ~strategy:Hfi_sfi.Strategy.Guard_pages w in
  let p = Option.get p in
  (* shrink every recorded non-singleton register interval by one from
     below; at least one such bound is attained by a real flow, so the
     inductive-invariant check must fail somewhere *)
  let shrink (st : VVstate.t) =
    {
      st with
      VVstate.regs =
        Array.map
          (fun d ->
            match Hfi_opt.Domain.bounds d with
            | Some (lo, hi) when lo < hi && lo > min_int -> Hfi_opt.Domain.itv (lo + 1) hi
            | _ -> d)
          st.VVstate.regs;
    }
  in
  let tampered =
    {
      p with
      VProof.invariants =
        List.map (fun (b, st) -> (b, if b > 0 then shrink st else st)) p.VProof.invariants;
    }
  in
  proofcheck_rejects "tampered invariant" tampered w;
  (* and the tampering also fails via the JSON round-trip path *)
  match VProof.of_json_string (VProof.to_json tampered) with
  | Error e -> Alcotest.failf "tampered artifact should still parse: %s" e
  | Ok p' -> proofcheck_rejects "tampered invariant (via json)" p' w

let test_proof_truncated_artifact () =
  let w = Hfi_workloads.Sightglass.find "base64" in
  let _, p = VChecks.verify_workload_with_proof ~strategy:Hfi_sfi.Strategy.Guard_pages w in
  let s = VProof.to_json (Option.get p) in
  (* every strict prefix must fail to parse — truncation is never a
     silently-smaller proof *)
  List.iter
    (fun frac ->
      let n = String.length s * frac / 100 in
      match VProof.of_json_string (String.sub s 0 n) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "truncated artifact (%d%%) parsed" frac)
    [ 10; 50; 90; 99 ]

let test_proof_version_mismatch () =
  let w = Hfi_workloads.Sightglass.find "fib2" in
  let _, p = VChecks.verify_workload_with_proof ~strategy:Hfi_sfi.Strategy.Guard_pages w in
  let p = Option.get p in
  proofcheck_rejects "verifier-version mismatch"
    { p with VProof.verifier_version = VChecks.verifier_version + 1 }
    w;
  proofcheck_rejects "proof-format-version mismatch"
    { p with VProof.proof_version = VProof.current_version + 1 }
    w;
  proofcheck_rejects "fingerprint mismatch" { p with VProof.fingerprint = "deadbeef" } w

let suite =
  [
    QCheck_alcotest.to_alcotest prop_addr_space_matches_reference;
    QCheck_alcotest.to_alcotest prop_multibyte_load_matches_bytewise;
    QCheck_alcotest.to_alcotest prop_multibyte_store_matches_bytewise;
    QCheck_alcotest.to_alcotest prop_load_after_remap_sees_new_mapping;
    QCheck_alcotest.to_alcotest prop_cache_matches_lru_reference;
    QCheck_alcotest.to_alcotest prop_prng_int_in_range;
    QCheck_alcotest.to_alcotest prop_percentile_monotonic;
    QCheck_alcotest.to_alcotest prop_geomean_between_min_max;
    QCheck_alcotest.to_alcotest prop_program_offsets_consistent;
    QCheck_alcotest.to_alcotest prop_hfi_state_invariants;
    QCheck_alcotest.to_alcotest prop_xsave_restores_observables;
    QCheck_alcotest.to_alcotest prop_domain_join_sound;
    QCheck_alcotest.to_alcotest prop_fact_join_sound;
    QCheck_alcotest.to_alcotest prop_threshold_widening_terminates;
    Alcotest.test_case "proofcheck rejects a tampered invariant" `Quick
      test_proof_tampered_invariant;
    Alcotest.test_case "proofcheck rejects a truncated artifact" `Quick
      test_proof_truncated_artifact;
    Alcotest.test_case "proofcheck rejects version/fingerprint mismatches" `Quick
      test_proof_version_mismatch;
  ]

