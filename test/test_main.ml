let () =
  Alcotest.run "hfi"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("isa", Test_isa.suite);
      ("memory", Test_memory.suite);
      ("hfi-core", Test_hfi_core.suite);
      ("pipeline", Test_pipeline.suite);
      ("uop", Test_uop.suite);
      ("opt", Test_opt.suite);
      ("verify", Test_verify.suite);
      ("golden", Test_golden.suite);
      ("obs", Test_obs.suite);
      ("slo", Test_slo.suite);
      ("sfi", Test_sfi.suite);
      ("wasm", Test_wasm.suite);
      ("wasm-ir", Test_wasm_ir.suite);
      ("workloads", Test_workloads.suite);
      ("runtime", Test_runtime.suite);
      ("serving", Test_serving.suite);
      ("spectre", Test_spectre.suite);
      ("experiments", Test_experiments.suite);
      ("result-cache", Test_result_cache.suite);
      ("fault", Test_fault.suite);
      ("properties", Test_properties.suite);
    ]
