open Hfi_isa
open Hfi_memory
open Hfi_sfi

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_strategy_metadata () =
  check_int "guard reserves one reg" 1 (List.length (Strategy.reserved_registers Strategy.Guard_pages));
  check_int "bounds reserves two" 2 (List.length (Strategy.reserved_registers Strategy.Bounds_checks));
  check_int "hfi reserves none" 0 (List.length (Strategy.reserved_registers Strategy.Hfi));
  check_bool "masking imprecise" false (Strategy.precise_traps Strategy.Masking);
  check_bool "hfi precise" true (Strategy.precise_traps Strategy.Hfi);
  check_int "guard footprint 4GiB" (4 * 1024 * 1024 * 1024) (Strategy.guard_region_bytes Strategy.Guard_pages);
  check_int "hfi no guards" 0 (Strategy.guard_region_bytes Strategy.Hfi)

let test_mpk_domain_limit () =
  let k = Kernel.create (Addr_space.create ()) in
  let m = Mpk.create k in
  for _ = 1 to Mpk.max_domains do
    ignore (Mpk.allocate_domain m)
  done;
  check_int "15 domains" 15 (Mpk.domains_in_use m);
  Alcotest.check_raises "16th fails" Mpk.Out_of_domains (fun () -> ignore (Mpk.allocate_domain m))

let test_mpk_free_and_reuse () =
  let k = Kernel.create (Addr_space.create ()) in
  let m = Mpk.create k in
  let d = Mpk.allocate_domain m in
  Mpk.free_domain m d;
  check_int "freed" 0 (Mpk.domains_in_use m);
  ignore (Mpk.allocate_domain m);
  check_int "re-allocated" 1 (Mpk.domains_in_use m)

let test_mpk_switch_cheap_userspace () =
  let mem = Addr_space.create () in
  let k = Kernel.create mem in
  let m = Mpk.create k in
  let d = Mpk.allocate_domain m in
  let kernel_before = Kernel.cycles k in
  let c = Mpk.switch_to m ~domain:d in
  check_bool "no kernel involvement" true (Kernel.cycles k = kernel_before);
  check_bool "tens of cycles" true (c > 10.0 && c < 500.0);
  check_int "active" d (Mpk.active_domain m)

let test_mpk_assign_pages_is_kernel_call () =
  let mem = Addr_space.create () in
  Addr_space.mmap mem ~addr:0x10000 ~len:8192 Perm.rw;
  let k = Kernel.create mem in
  let m = Mpk.create k in
  let d = Mpk.allocate_domain m in
  let before = Kernel.cycles k in
  Mpk.assign_pages m ~domain:d ~addr:0x10000 ~len:8192;
  check_bool "kernel cycles charged" true (Kernel.cycles k > before);
  Alcotest.check_raises "unallocated domain"
    (Invalid_argument "Mpk.assign_pages: unallocated domain") (fun () ->
      Mpk.assign_pages m ~domain:99 ~addr:0x10000 ~len:4096)

let test_seccomp_filter_semantics () =
  let f = Seccomp.create ~allowed:[ Syscall.Read; Syscall.Write ] in
  check_bool "read allowed" true (fst (Seccomp.evaluate f ~number:(Syscall.number Syscall.Read)) = Seccomp.Allow);
  check_bool "open trapped" true (fst (Seccomp.evaluate f ~number:(Syscall.number Syscall.Open)) = Seccomp.Trap)

let test_seccomp_cost_ordering () =
  let f = Seccomp.create ~allowed:[ Syscall.Read; Syscall.Write; Syscall.Open; Syscall.Close ] in
  let _, first = Seccomp.evaluate f ~number:(Syscall.number Syscall.Read) in
  let _, last = Seccomp.evaluate f ~number:(Syscall.number Syscall.Close) in
  check_bool "later entries cost more" true (last > first);
  check_bool "cycles model positive" true (Seccomp.per_syscall_cycles f ~number:2 > 0.0)

let test_swivel_factors () =
  let p b i s = { Swivel.branch_density = b; indirect_density = i; straightline_fraction = s } in
  (* Calibrated to Table 1's measured ratios. *)
  let xml = Swivel.execution_factor (p 0.12 0.004 0.2) in
  check_bool "xml ~1.33" true (Float.abs (xml -. 1.33) < 0.05);
  let img = Swivel.execution_factor (p 0.02 0.0005 0.9) in
  check_bool "image can be <1" true (img < 1.0);
  check_bool "floor at 0.90" true (Swivel.execution_factor (p 0.0 0.0 1.0) >= 0.90);
  check_bool "bloat ~17%" true (Float.abs (Swivel.binary_bloat_factor -. 1.17) < 0.001);
  check_bool "tail inflation grows with branches" true
    (Swivel.tail_inflation (p 0.2 0.0 0.0) > Swivel.tail_inflation (p 0.05 0.0 0.0))

(* Rewriter: classic SFI over native programs. *)

let native_prog () =
  let open Instr in
  Program.of_instrs
    [|
      Mov (Reg.RBX, Imm 0x2000_0000);
      Store (W8, Instr.mem ~base:Reg.RBX ~disp:8 (), Imm 7);
      Load (W8, Reg.RAX, Instr.mem ~base:Reg.RBX ~disp:8 ());
      Halt;
    |]

let run_prog prog =
  let mem = Addr_space.create () in
  let kernel = Kernel.create mem in
  let hfi = Hfi_core.Hfi.create () in
  Addr_space.mmap mem ~addr:0x40_0000 ~len:65536 Perm.rx;
  Addr_space.mmap mem ~addr:0x2000_0000 ~len:65536 Perm.rw;
  let m = Hfi_pipeline.Machine.create ~prog ~code_base:0x40_0000 ~mem ~kernel ~hfi ~entry:0 () in
  let e = Hfi_pipeline.Fast_engine.create m in
  (Hfi_pipeline.Fast_engine.run e, m)

let test_rewriter_bounds_preserves_behavior () =
  let mode = Rewriter.Bounds { base = 0x2000_0000; size = 65536 } in
  let rewritten = Rewriter.apply ~mode ~scratch:Reg.R15 (native_prog ()) in
  let status, m = run_prog rewritten in
  check_bool "halted" true (status = Hfi_pipeline.Machine.Halted);
  check_int "same result" 7 (Hfi_pipeline.Machine.get_reg m Reg.RAX)

let test_rewriter_bounds_traps_oob () =
  let open Instr in
  let bad =
    Program.of_instrs
      [| Mov (Reg.RBX, Imm 0x3000_0000); Load (W8, Reg.RAX, Instr.mem ~base:Reg.RBX ()); Halt |]
  in
  let mode = Rewriter.Bounds { base = 0x2000_0000; size = 65536 } in
  let rewritten = Rewriter.apply ~mode ~scratch:Reg.R15 bad in
  let status, m = run_prog rewritten in
  check_bool "halted at trap block" true (status = Hfi_pipeline.Machine.Halted);
  check_int "trap sentinel" (-1) (Hfi_pipeline.Machine.get_reg m Reg.RAX)

let test_rewriter_mask_wraps () =
  let open Instr in
  let bad =
    Program.of_instrs
      [|
        Mov (Reg.RBX, Imm 0x3000_0008);
        Store (W8, Instr.mem ~base:Reg.RBX (), Imm 99);
        Load (W8, Reg.RAX, Instr.mem ~disp:0x2000_0008 ());
        Halt;
      |]
  in
  let mode = Rewriter.Mask { base = 0x2000_0000; size = 65536 } in
  let rewritten = Rewriter.apply ~mode ~scratch:Reg.R15 bad in
  let status, m = run_prog rewritten in
  check_bool "no trap (masking)" true (status = Hfi_pipeline.Machine.Halted);
  (* the OOB store wrapped to base+8 — SS2's silent corruption *)
  check_int "corruption in-sandbox" 99 (Hfi_pipeline.Machine.get_reg m Reg.RAX)

let test_rewriter_remaps_branches () =
  let open Instr in
  let prog =
    Program.of_instrs
      [|
        Mov (Reg.RBX, Imm 0x2000_0000);
        Load (W8, Reg.RAX, Instr.mem ~base:Reg.RBX ());
        Jmp 4;
        Mov (Reg.RAX, Imm (-5));
        Halt;
      |]
  in
  let mode = Rewriter.Bounds { base = 0x2000_0000; size = 65536 } in
  let rewritten = Rewriter.apply ~mode ~scratch:Reg.R15 prog in
  let status, m = run_prog rewritten in
  check_bool "halted" true (status = Hfi_pipeline.Machine.Halted);
  check_int "jump skipped the poison mov" 0 (Hfi_pipeline.Machine.get_reg m Reg.RAX)

let test_rewriter_overhead_count () =
  let mode = Rewriter.Bounds { base = 0; size = 65536 } in
  check_int "2 mem ops x 5" 10 (Rewriter.overhead_instrs ~mode (native_prog ()));
  let mask = Rewriter.Mask { base = 0; size = 65536 } in
  check_int "2 mem ops x 3" 6 (Rewriter.overhead_instrs ~mode:mask (native_prog ()))

let test_rewriter_mask_validation () =
  Alcotest.check_raises "non-pow2" (Invalid_argument "Rewriter: mask size must be a power of two")
    (fun () -> ignore (Rewriter.apply ~mode:(Rewriter.Mask { base = 0; size = 1000 }) ~scratch:Reg.R15 (native_prog ())));
  Alcotest.check_raises "misaligned"
    (Invalid_argument "Rewriter: mask base must be size-aligned") (fun () ->
      ignore
        (Rewriter.apply ~mode:(Rewriter.Mask { base = 4096; size = 65536 }) ~scratch:Reg.R15
           (native_prog ())))

let prop_rewriter_never_escapes =
  QCheck.Test.make ~name:"bounds-rewritten programs never touch memory outside the region"
    ~count:60
    (QCheck.pair (QCheck.int_bound 0xffff) (QCheck.int_bound 3))
    (fun (offset, kind) ->
      let open Instr in
      (* A program computing a wild address from the random offset. *)
      let addr = 0x2000_0000 + (offset * 977 * (kind + 1)) in
      let prog =
        Program.of_instrs
          [| Mov (Reg.RBX, Imm addr); Load (W8, Reg.RAX, Instr.mem ~base:Reg.RBX ()); Halt |]
      in
      let mode = Rewriter.Bounds { base = 0x2000_0000; size = 65536 } in
      let rewritten = Rewriter.apply ~mode ~scratch:Reg.R15 prog in
      (* Map ONLY the sandbox region: any escaping access would fault. *)
      let mem = Addr_space.create () in
      let kernel = Kernel.create mem in
      let hfi = Hfi_core.Hfi.create () in
      Addr_space.mmap mem ~addr:0x40_0000 ~len:65536 Perm.rx;
      Addr_space.mmap mem ~addr:0x2000_0000 ~len:65536 Perm.rw;
      let m = Hfi_pipeline.Machine.create ~prog:rewritten ~code_base:0x40_0000 ~mem ~kernel ~hfi ~entry:0 () in
      let e = Hfi_pipeline.Fast_engine.create m in
      Hfi_pipeline.Fast_engine.run e = Hfi_pipeline.Machine.Halted)

let suite =
  [
    Alcotest.test_case "strategy metadata" `Quick test_strategy_metadata;
    Alcotest.test_case "mpk 15-domain limit" `Quick test_mpk_domain_limit;
    Alcotest.test_case "mpk free/reuse" `Quick test_mpk_free_and_reuse;
    Alcotest.test_case "mpk userspace switch" `Quick test_mpk_switch_cheap_userspace;
    Alcotest.test_case "mpk page assignment via kernel" `Quick test_mpk_assign_pages_is_kernel_call;
    Alcotest.test_case "seccomp semantics" `Quick test_seccomp_filter_semantics;
    Alcotest.test_case "seccomp cost ordering" `Quick test_seccomp_cost_ordering;
    Alcotest.test_case "swivel factors" `Quick test_swivel_factors;
    Alcotest.test_case "rewriter bounds preserves behavior" `Quick test_rewriter_bounds_preserves_behavior;
    Alcotest.test_case "rewriter bounds traps OOB" `Quick test_rewriter_bounds_traps_oob;
    Alcotest.test_case "rewriter mask wraps in-sandbox" `Quick test_rewriter_mask_wraps;
    Alcotest.test_case "rewriter remaps branches" `Quick test_rewriter_remaps_branches;
    Alcotest.test_case "rewriter overhead counts" `Quick test_rewriter_overhead_count;
    Alcotest.test_case "rewriter mask validation" `Quick test_rewriter_mask_validation;
    QCheck_alcotest.to_alcotest prop_rewriter_never_escapes;
  ]
