(* Shape tests over the experiment registry: every experiment must run
   (quick mode) and its measured result must point the same way as the
   paper's claim — who wins, and roughly by how much. *)

open Hfi_experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_registry_complete () =
  (* Every table/figure of the evaluation section plus the ablations. *)
  let expected =
    [ "fig2"; "fig3"; "heap-growth"; "reg-pressure"; "font"; "fig4"; "teardown"; "scaling";
      "syscalls"; "fig5"; "table1"; "fig7"; "ablate-soe"; "ablate-parallel"; "ablate-comparator";
      "ablate-transitions"; "multi-memory"; "chaining"; "opt-backend"; "opt-passes"; "fuzz";
      "serve_steady"; "serve_burst"; "serve_chaos" ]
  in
  List.iter
    (fun id -> check_bool (id ^ " registered") true (Registry.find id <> None))
    expected;
  check_int "registry size" (List.length expected) (List.length Registry.all)

let run id =
  match Registry.find id with
  | Some e -> e.Registry.run ~quick:true ()
  | None -> Alcotest.failf "experiment %s missing" id

let test_all_run_quick () =
  List.iter
    (fun (e : Registry.entry) ->
      let r = e.run ~quick:true () in
      check_bool (e.id ^ " produced a table") true (String.length r.Report.table > 0);
      check_bool (e.id ^ " produced a verdict") true (String.length r.Report.verdict > 0))
    Registry.all

let test_fig2_emulation_accuracy () =
  let rows = Fig2_validation.measure ~quick:true () in
  List.iter
    (fun r ->
      check_bool
        (r.Fig2_validation.kernel ^ " emulation within 10%")
        true
        (r.Fig2_validation.ratio > 0.90 && r.Fig2_validation.ratio < 1.10))
    rows

let test_fig3_shape () =
  let rows = Fig3_spec.measure ~quick:true () in
  List.iter
    (fun r ->
      let bounds = r.Fig3_spec.bounds /. r.Fig3_spec.guard in
      let hfi = r.Fig3_spec.hfi /. r.Fig3_spec.guard in
      check_bool (r.Fig3_spec.bench ^ ": bounds slower") true (bounds > 1.10);
      check_bool (r.Fig3_spec.bench ^ ": hfi competitive") true (hfi < 1.08))
    rows

let test_heap_growth_ratio () =
  let r = Heap_growth.run ~quick:true () in
  (* "~30x": accept an order-of-magnitude window. *)
  check_bool "hfi much faster" true
    (let v = r.Report.verdict in
     (* verdict ends with "NN.Nx" *)
     match String.rindex_opt v ' ' with
     | Some i ->
       let tail = String.sub v (i + 1) (String.length v - i - 1) in
       let x = float_of_string (String.sub tail 0 (String.length tail - 1)) in
       x > 10.0 && x < 100.0
     | None -> false)

let test_teardown_shape () =
  let stock = Faas_lifecycle.teardown_us_per_sandbox ~sandboxes:300 Faas_lifecycle.Stock in
  let batched = Faas_lifecycle.teardown_us_per_sandbox ~sandboxes:300 Faas_lifecycle.Hfi_batched in
  let noelide =
    Faas_lifecycle.teardown_us_per_sandbox ~sandboxes:300 Faas_lifecycle.Batched_without_elision
  in
  check_bool "batched beats stock" true (batched < stock);
  check_bool "non-elided batching loses to stock" true (noelide > stock)

let test_scaling_numbers () =
  check_int "paper's own 16K figure" 16384
    (Faas_lifecycle.max_sandboxes ~va_bits:47 ~heap_bytes:(4 * (1 lsl 30))
       ~guard_bytes:(4 * (1 lsl 30)));
  check_bool "HFI fits ~10x more" true
    (Faas_lifecycle.max_sandboxes ~va_bits:47 ~heap_bytes:(1 lsl 30) ~guard_bytes:0 >= 131072)

let test_syscalls_shape () =
  let r = run "syscalls" in
  (* seccomp must be over HFI by low single digits *)
  check_bool "seccomp above HFI" true
    (Scanf.sscanf r.Report.verdict "seccomp-bpf %f%% over HFI" (fun p -> p > 0.5 && p < 5.0))

let test_spectre_verdict () =
  let r = run "fig7" in
  (* Every leak/blocked flag in the verdict must read true. *)
  let contains_false =
    let v = r.Report.verdict and needle = "false" in
    let n = String.length v and m = String.length needle in
    let rec go i = i + m <= n && (String.sub v i m = needle || go (i + 1)) in
    go 0
  in
  check_bool "verdict non-empty" true (String.length r.Report.verdict > 0);
  check_bool "no attack verdict is false" false contains_false

(* --- Determinism under parallel fan-out ---

   Results must not depend on HFI_JOBS: every experiment seeds its PRNGs
   locally, so a parallel inner matrix must produce the exact rows the
   sequential one does. *)

let test_fig2_parallel_deterministic () =
  let seq = Fig2_validation.measure ~quick:true ~jobs:1 () in
  let par = Fig2_validation.measure ~quick:true ~jobs:4 () in
  check_int "row count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Fig2_validation.row) (b : Fig2_validation.row) ->
      check_bool (a.kernel ^ " identical row") true (a = b))
    seq par

let test_fig3_parallel_deterministic () =
  let seq = Fig3_spec.measure ~quick:true ~jobs:1 () in
  let par = Fig3_spec.measure ~quick:true ~jobs:4 () in
  check_int "row count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Fig3_spec.row) (b : Fig3_spec.row) ->
      check_bool (a.bench ^ " identical row") true (a = b))
    seq par

let test_opt_backend_parallel_deterministic () =
  let seq = Opt_backend.measure ~quick:true ~jobs:1 () in
  let par = Opt_backend.measure ~quick:true ~jobs:4 () in
  check_int "row count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Opt_backend.row) (b : Opt_backend.row) ->
      check_bool (a.strategy ^ " identical row") true (a = b))
    seq par;
  let seq_p = Opt_backend.pass_table ~quick:true ~jobs:1 () in
  let par_p = Opt_backend.pass_table ~quick:true ~jobs:4 () in
  check_bool "pass table identical" true (seq_p = par_p)

(* The fuzz campaign shards its iteration space over the pool with one
   splitmix64 seed per shard, so the merged stats — counters, and the
   violation list with its global iteration indices — must be identical
   at any job count, byte for byte once rendered. *)
let test_fuzz_campaign_jobs_deterministic () =
  let iters = 120 (* three shards: exercises the merge across shard boundaries *) in
  let render (s : Fuzz.stats) =
    Printf.sprintf "%d/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d|%s" s.Fuzz.iterations s.Fuzz.checked
      s.Fuzz.skipped s.Fuzz.trap_agreements s.Fuzz.value_agreements s.Fuzz.opt_agreements
      s.Fuzz.benign_injections s.Fuzz.adversarial_injections s.Fuzz.verified s.Fuzz.plants
      s.Fuzz.plants_detected s.Fuzz.static_plants s.Fuzz.static_plants_detected
      (String.concat "; " (List.map Hfi_util.Fault.to_string s.Fuzz.violations))
  in
  let seq = Fuzz.campaign ~plant:true ~jobs:1 ~seed:0xFEED5EED ~iters () in
  let par = Fuzz.campaign ~plant:true ~jobs:4 ~seed:0xFEED5EED ~iters () in
  Alcotest.(check string) "jobs=1 == jobs=4" (render seq) (render par)

let test_run_many_matches_sequential () =
  let ids = [ "reg-pressure"; "syscalls"; "teardown" ] in
  let entries = List.filter_map Registry.find ids in
  check_int "all ids resolve" (List.length ids) (List.length entries);
  let seq = List.map (fun (e : Registry.entry) -> e.run ~quick:true ()) entries in
  let par = Registry.run_many ~jobs:4 ~quick:true entries in
  List.iter2
    (fun (r : Report.t) (o : Registry.outcome) ->
      match o.Registry.result with
      | Ok r' -> check_bool (o.Registry.entry.Registry.id ^ " identical report") true (r = r')
      | Error f ->
        Alcotest.failf "%s failed: %s" o.Registry.entry.Registry.id (Hfi_util.Fault.to_string f))
    seq par

let suite =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "fig2 parallel == sequential" `Quick test_fig2_parallel_deterministic;
    Alcotest.test_case "fig3 parallel == sequential" `Quick test_fig3_parallel_deterministic;
    Alcotest.test_case "opt-backend parallel == sequential" `Slow
      test_opt_backend_parallel_deterministic;
    Alcotest.test_case "run_many parallel == sequential" `Quick test_run_many_matches_sequential;
    Alcotest.test_case "fuzz campaign: jobs=1 == jobs=4" `Slow test_fuzz_campaign_jobs_deterministic;
    Alcotest.test_case "all experiments run (quick)" `Slow test_all_run_quick;
    Alcotest.test_case "fig2 emulation accuracy" `Quick test_fig2_emulation_accuracy;
    Alcotest.test_case "fig3 shape" `Quick test_fig3_shape;
    Alcotest.test_case "heap-growth ratio" `Quick test_heap_growth_ratio;
    Alcotest.test_case "teardown shape" `Quick test_teardown_shape;
    Alcotest.test_case "scaling numbers" `Quick test_scaling_numbers;
    Alcotest.test_case "syscalls shape" `Quick test_syscalls_shape;
    Alcotest.test_case "spectre verdict" `Quick test_spectre_verdict;
  ]
