(* The persistent experiment-result cache (lib/experiments/result_cache):
   env-var gating, round-trips through the on-disk JSON including
   escape-worthy characters, key separation, and graceful misses on
   corrupt entries. *)

module RC = Hfi_experiments.Result_cache
module Report = Hfi_experiments.Report

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_cache_env v f =
  Unix.putenv "HFI_RESULT_CACHE" v;
  Fun.protect ~finally:(fun () -> Unix.putenv "HFI_RESULT_CACHE" "") f

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "hfi-cache-test-%d-%d" (Unix.getpid ()) !n)
    in
    d

let sample_report =
  {
    Report.id = "fig3";
    title = "SPEC 2006 \"quoted\"\ttitle";
    paper_claim = "line one\nline two \\ backslash";
    table = "col\tcol\nrow\x01ctrl";
    verdict = "ok";
    data = [ ("p99_ms", 12.5) ];
  }

let test_disabled_by_default () =
  with_cache_env "" (fun () ->
      check_bool "unset/empty disables" false (RC.enabled ());
      RC.store ~id:"x" ~quick:false ~seconds:1.0 sample_report;
      check_bool "find misses when disabled" true (RC.find ~id:"x" ~quick:false = None));
  with_cache_env "0" (fun () -> check_bool "\"0\" disables" false (RC.enabled ()))

let test_round_trip () =
  let dir = fresh_dir () in
  with_cache_env dir (fun () ->
      check_bool "dir enables" true (RC.enabled ());
      check_bool "cold miss" true (RC.find ~id:"fig3" ~quick:true = None);
      RC.store ~id:"fig3" ~quick:true ~seconds:1.25 sample_report;
      match RC.find ~id:"fig3" ~quick:true with
      | None -> Alcotest.fail "expected a hit after store"
      | Some (r, seconds) ->
        check_string "id" sample_report.Report.id r.Report.id;
        check_string "title" sample_report.Report.title r.Report.title;
        check_string "paper_claim" sample_report.Report.paper_claim r.Report.paper_claim;
        check_string "table" sample_report.Report.table r.Report.table;
        check_string "verdict" sample_report.Report.verdict r.Report.verdict;
        Alcotest.(check (float 1e-9)) "uncached seconds" 1.25 seconds)

let test_quick_and_full_are_distinct () =
  let dir = fresh_dir () in
  with_cache_env dir (fun () ->
      RC.store ~id:"fig3" ~quick:true ~seconds:0.5 sample_report;
      check_bool "full missed" true (RC.find ~id:"fig3" ~quick:false = None);
      check_bool "other id missed" true (RC.find ~id:"fig2" ~quick:true = None);
      check_bool "quick hit" true (RC.find ~id:"fig3" ~quick:true <> None))

let test_corrupt_entry_is_a_miss () =
  let dir = fresh_dir () in
  with_cache_env dir (fun () ->
      RC.store ~id:"fig3" ~quick:false ~seconds:0.5 sample_report;
      let path = RC.entry_path ~dir ~key:(RC.key ~id:"fig3" ~quick:false) in
      let oc = open_out path in
      output_string oc "{\"id\": [not flat";
      close_out oc;
      check_bool "corrupt entry misses, not crashes" true
        (RC.find ~id:"fig3" ~quick:false = None);
      (* A missing field is also a miss. *)
      let oc = open_out path in
      output_string oc "{\"id\":\"fig3\",\"uncached_seconds\":1}";
      close_out oc;
      check_bool "incomplete entry misses" true (RC.find ~id:"fig3" ~quick:false = None))

(* v3 keys carry the runtime configuration: flipping the optimizer
   switch or the reg-pressure model must land on a different entry, so a
   report measured under one configuration is never served under
   another. *)
let test_key_tracks_configuration () =
  let base = RC.key ~id:"fig3" ~quick:true in
  let flipped =
    Hfi_opt.Driver.with_enabled
      (not !Hfi_opt.Driver.enabled)
      (fun () -> RC.key ~id:"fig3" ~quick:true)
  in
  check_bool "opt flag separates keys" true (base <> flipped);
  let saved = try Sys.getenv "HFI_REGPRESSURE_MODEL" with Not_found -> "" in
  Unix.putenv "HFI_REGPRESSURE_MODEL" "reserve";
  let reserve =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "HFI_REGPRESSURE_MODEL" saved)
      (fun () -> RC.key ~id:"fig3" ~quick:true)
  in
  check_bool "reg-pressure model separates keys" true (base <> reserve)

let test_registry_uses_cache () =
  let dir = fresh_dir () in
  with_cache_env dir (fun () ->
      let runs = ref 0 in
      let entry =
        {
          Hfi_experiments.Registry.id = "synthetic-cache-test";
          description = "test";
          run =
            (fun ?quick:_ () ->
              incr runs;
              { sample_report with Report.id = "synthetic-cache-test" });
        }
      in
      let o1 = Hfi_experiments.Registry.run_entry ~quick:true entry in
      check_bool "first run is a miss" false o1.Hfi_experiments.Registry.cached;
      let o2 = Hfi_experiments.Registry.run_entry ~quick:true entry in
      check_bool "second run is a hit" true o2.Hfi_experiments.Registry.cached;
      Alcotest.(check int) "experiment ran once" 1 !runs;
      check_bool "hit carries the report" true
        (o2.Hfi_experiments.Registry.result = o1.Hfi_experiments.Registry.result);
      let o3 = Hfi_experiments.Registry.run_entry ~quick:true ~use_cache:false entry in
      check_bool "use_cache:false bypasses" false o3.Hfi_experiments.Registry.cached;
      Alcotest.(check int) "bypass re-ran" 2 !runs)

let suite =
  [
    Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
    Alcotest.test_case "store/find round trip" `Quick test_round_trip;
    Alcotest.test_case "keys separate id and mode" `Quick test_quick_and_full_are_distinct;
    Alcotest.test_case "corrupt entries are misses" `Quick test_corrupt_entry_is_a_miss;
    Alcotest.test_case "keys track opt/reg-pressure configuration" `Quick
      test_key_tracks_configuration;
    Alcotest.test_case "registry consults the cache" `Quick test_registry_uses_cache;
  ]
