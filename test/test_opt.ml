(* Unit tests for the optimizing middle-end (lib/opt): dominators and
   natural loops, the program edit buffer, liveness, the e-graph-style
   rewriter, DCE, the strategy-aware SFI check passes (elision, reuse,
   hoisting) and the linear-scan register allocator.

   The SFI passes are deliberately tested on codegen-shaped workloads
   whose checked index is NOT interval-provable (it comes from a W8 heap
   load, so the abstract domain knows nothing about it): on such
   programs elision cannot fire and reuse/hoisting must carry the win.
   Every optimized program is also pushed through the static verifier
   and must come back [Safe] — the translation-validation contract. *)

open Hfi_isa
open Hfi_memory
open Hfi_pipeline
open Hfi_wasm
module Dom = Hfi_opt.Dom
module Edit = Hfi_opt.Edit
module Liveness = Hfi_opt.Liveness
module Rewrite = Hfi_opt.Rewrite
module Dce = Hfi_opt.Dce
module Regalloc = Hfi_opt.Regalloc
module Driver = Hfi_opt.Driver
module Checks = Hfi_verify.Checks
module Strategy = Hfi_sfi.Strategy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let decode prog = Uop.decode prog ~code_base:Layout.code_base
let cfg_of prog = Cfg.build (decode prog)

let count_instrs p f = Array.fold_left (fun n i -> if f i then n + 1 else n) 0 (Program.instrs p)

(* Static check instructions of the software schemes: the bound compare
   for bounds checks, the scratch-register AND for masking. *)
let check_count strategy p =
  match strategy with
  | Strategy.Bounds_checks -> count_instrs p (function Instr.Cmp_mem _ -> true | _ -> false)
  | Strategy.Masking ->
    count_instrs p (function
      | Instr.Alu (Instr.And, r, Instr.Imm _) when r = Codegen.scratch -> true
      | _ -> false)
  | Strategy.Guard_pages | Strategy.Hfi -> 0

let assert_safe name strategy prog =
  let r = Checks.verify ~name { Checks.strategy; code_base = Layout.code_base } prog in
  check_bool (name ^ " verifies Safe") true
    (match r.Hfi_verify.Report.verdict with Hfi_verify.Report.Safe -> true | _ -> false)

type measured = { instrs : int; rax : int }

let run_measured ~strategy ~optimize w =
  let inst = Instance.instantiate ~strategy ~optimize w in
  let e = Fast_engine.create (Instance.machine inst) in
  (match Fast_engine.run e with
  | Machine.Halted -> ()
  | Machine.Running | Machine.Faulted _ -> Alcotest.failf "%s did not halt" w.Instance.name);
  { instrs = Fast_engine.instrs e; rax = Instance.result_rax inst }

(* ------------------------------------------------------------------ *)
(* mask_of_size (satellite: hardening + property test)                  *)

let test_mask_of_size_basics () =
  check_int "min window 64K" 65535 (Codegen.mask_of_size 1);
  check_int "exactly one page" 65535 (Codegen.mask_of_size 65536);
  check_int "rounds up" 131071 (Codegen.mask_of_size 65537);
  check_int "pow2 size" ((1 lsl 20) - 1) (Codegen.mask_of_size (1 lsl 20))

let test_mask_of_size_rejects_nonpositive () =
  List.iter
    (fun sz ->
      check_bool
        (Printf.sprintf "size %d rejected" sz)
        true
        (match Codegen.mask_of_size sz with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ 0; -1; min_int ]

let test_mask_of_size_saturates () =
  (* Near max_int the doubling must saturate instead of overflowing to a
     negative window; the call must also terminate. *)
  check_int "max_int saturates" max_int (Codegen.mask_of_size max_int);
  check_int "above 2^61 saturates" max_int (Codegen.mask_of_size ((max_int / 2) + 7));
  check_int "largest pow2" (max_int / 2) (Codegen.mask_of_size ((max_int / 4) + 2))

let test_mask_of_size_covers_window () =
  (* Property: the rounded window always covers [0, size-1] and is a
     power-of-two window (or the saturated all-bits mask). *)
  let sizes = ref [] in
  let s = ref 1 in
  while !s > 0 && !s < max_int / 3 do
    sizes := !s :: (!s + 1) :: ((!s * 3) + 17) :: !sizes;
    s := !s * 7
  done;
  List.iter
    (fun size ->
      let m = Codegen.mask_of_size size in
      check_bool (Printf.sprintf "mask covers size %d" size) true (m >= size - 1);
      check_bool
        (Printf.sprintf "mask %d is a pow2 window" m)
        true
        (m = max_int || (m + 1) land m = 0))
    !sizes

(* ------------------------------------------------------------------ *)
(* Dominators and natural loops                                         *)

(* 0: Mov RAX,0 / 1: Mov RBX,5 / 2: Add RAX,RBX <- header
   3: Sub RBX,1 / 4: Cmp RBX,0 / 5: Jcc Gt 2 / 6: Halt *)
let loop_prog =
  Program.of_instrs
    [|
      Instr.Mov (Reg.RAX, Instr.Imm 0);
      Instr.Mov (Reg.RBX, Instr.Imm 5);
      Instr.Alu (Instr.Add, Reg.RAX, Instr.Reg Reg.RBX);
      Instr.Alu (Instr.Sub, Reg.RBX, Instr.Imm 1);
      Instr.Cmp (Reg.RBX, Instr.Imm 0);
      Instr.Jcc (Instr.Gt, 2);
      Instr.Halt;
    |]

let test_dom_tree () =
  let cfg = cfg_of loop_prog in
  check_int "three blocks" 3 (Array.length cfg.Cfg.blocks);
  let t = Dom.compute cfg in
  check_int "entry has no idom" (-1) t.Dom.idom.(0);
  check_int "loop block idom" 0 t.Dom.idom.(1);
  check_int "exit block idom" 1 t.Dom.idom.(2);
  check_bool "entry dominates exit" true (Dom.dominates t 0 2);
  check_bool "loop dominates exit" true (Dom.dominates t 1 2);
  check_bool "exit does not dominate loop" false (Dom.dominates t 2 1)

let test_natural_loop () =
  let cfg = cfg_of loop_prog in
  let t = Dom.compute cfg in
  match Dom.loops cfg t with
  | [ l ] ->
    check_int "header" 1 l.Dom.header;
    check_bool "self back edge" true (List.mem (1, 1) l.Dom.back_edges);
    check_bool "body is the header block" true (List.sort compare l.Dom.body = [ 1 ])
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

(* ------------------------------------------------------------------ *)
(* Edit buffer                                                          *)

let test_edit_branch_to_deleted () =
  (* A branch to a deleted instruction lands on the next surviving one. *)
  let edit =
    Edit.create
      [| Instr.Mov (Reg.RAX, Instr.Imm 1); Instr.Jmp 2; Instr.Mov (Reg.RAX, Instr.Imm 9); Instr.Halt |]
  in
  Edit.delete edit 2;
  let p = Program.instrs (Edit.rebuild edit) in
  check_int "three instrs survive" 3 (Array.length p);
  check_bool "jmp retargeted to halt" true (p.(1) = Instr.Jmp 2);
  check_bool "halt at 2" true (p.(2) = Instr.Halt)

let test_edit_branch_to_replacement () =
  (* A branch to a replaced instruction lands at the replacement body. *)
  let edit = Edit.create [| Instr.Jcc (Instr.Eq, 1); Instr.Nop; Instr.Halt |] in
  Edit.replace edit 1 [ Instr.Mov (Reg.RCX, Instr.Imm 1); Instr.Nop ];
  let p = Program.instrs (Edit.rebuild edit) in
  check_int "four instrs" 4 (Array.length p);
  check_bool "branch still lands at index 1" true (p.(0) = Instr.Jcc (Instr.Eq, 1));
  check_bool "replacement head" true (p.(1) = Instr.Mov (Reg.RCX, Instr.Imm 1))

let test_edit_insert_before_skipped_by_branch () =
  (* insert_before is fallthrough-only: the branch skips the insertion —
     exactly the loop-preheader shape hoisting relies on. *)
  let edit = Edit.create [| Instr.Mov (Reg.RAX, Instr.Imm 1); Instr.Jmp 2; Instr.Halt |] in
  Edit.insert_before edit 2 [ Instr.Mov (Reg.RBX, Instr.Imm 7) ];
  let p = Program.instrs (Edit.rebuild edit) in
  check_int "four instrs" 4 (Array.length p);
  check_bool "branch lands past the insertion" true (p.(1) = Instr.Jmp 3);
  check_bool "insertion on the fallthrough path" true (p.(2) = Instr.Mov (Reg.RBX, Instr.Imm 7));
  check_bool "unchanged buffer reports clean" false
    (let e2 = Edit.create [| Instr.Halt |] in
     Edit.changed e2)

(* ------------------------------------------------------------------ *)
(* Liveness                                                             *)

let test_liveness_branchy () =
  (* 0: Jcc Eq 3 / 1: Mov RAX,RBX / 2: Jmp 4 / 3: Mov RAX,RCX / 4: Halt *)
  let prog =
    Program.of_instrs
      [|
        Instr.Jcc (Instr.Eq, 3);
        Instr.Mov (Reg.RAX, Instr.Reg Reg.RBX);
        Instr.Jmp 4;
        Instr.Mov (Reg.RAX, Instr.Reg Reg.RCX);
        Instr.Halt;
      |]
  in
  let uops = decode prog in
  let cfg = Cfg.build uops in
  let live = Liveness.compute uops cfg in
  let live_in i r = Liveness.is_live live.Liveness.live_in.(i) (Reg.index r) in
  check_bool "RBX live at entry" true (live_in 0 Reg.RBX);
  check_bool "RCX live at entry" true (live_in 0 Reg.RCX);
  check_bool "RAX dead at entry (defined on both paths)" false (live_in 0 Reg.RAX);
  check_bool "RBX live on fall path" true (live_in 1 Reg.RBX);
  check_bool "RCX dead on fall path" false (live_in 1 Reg.RCX);
  check_bool "RCX live on taken path" true (live_in 3 Reg.RCX);
  check_bool "halt keeps the result register live" true (live_in 4 Reg.RAX)

(* ------------------------------------------------------------------ *)
(* Rewriting and DCE                                                    *)

let rewrite prog = fst (Rewrite.run ~code_base:Layout.code_base prog)

let test_rewrite_const_fold () =
  let p =
    rewrite
      (Program.of_instrs
         [| Instr.Mov (Reg.RAX, Instr.Imm 6); Instr.Alu (Instr.Mul, Reg.RAX, Instr.Imm 7); Instr.Halt |])
  in
  check_bool "6*7 folded to 42" true
    (Array.exists (fun i -> i = Instr.Mov (Reg.RAX, Instr.Imm 42)) (Program.instrs p))

let test_rewrite_strength_reduction () =
  (* Rdtsc makes RBX opaque, so the multiply cannot fold — it must
     strength-reduce to a shift instead. *)
  let p =
    rewrite
      (Program.of_instrs
         [| Instr.Rdtsc Reg.RBX; Instr.Alu (Instr.Mul, Reg.RBX, Instr.Imm 8); Instr.Halt |])
  in
  check_bool "mul pow2 becomes shl" true
    (Array.exists (fun i -> i = Instr.Alu (Instr.Shl, Reg.RBX, Instr.Imm 3)) (Program.instrs p))

let test_rewrite_add_zero_identity () =
  let p =
    rewrite
      (Program.of_instrs
         [| Instr.Rdtsc Reg.RBX; Instr.Alu (Instr.Add, Reg.RBX, Instr.Imm 0); Instr.Halt |])
  in
  check_bool "add 0 removed" false
    (Array.exists
       (function Instr.Alu (Instr.Add, Reg.RBX, _) -> true | _ -> false)
       (Program.instrs p))

let test_dce_removes_dead_def () =
  let p, n =
    Dce.run_fix ~code_base:Layout.code_base
      (Program.of_instrs
         [| Instr.Mov (Reg.RBX, Instr.Imm 1); Instr.Mov (Reg.RAX, Instr.Imm 2); Instr.Halt |])
  in
  check_bool "one deletion" true (n >= 1);
  check_int "dead def swept" 2 (Program.length p);
  check_bool "live def kept" true
    (Array.exists (fun i -> i = Instr.Mov (Reg.RAX, Instr.Imm 2)) (Program.instrs p))

(* ------------------------------------------------------------------ *)
(* SFI passes on codegen-shaped workloads                               *)

(* One heap load at a constant index: the interval analysis proves it in
   bounds, so elision must strip the check entirely. *)
let elide_workload =
  Instance.workload ~name:"opt-elide" ~heap_bytes:65536
    ~init:(fun mem ~heap_base -> Addr_space.poke mem ~addr:(heap_base + 16) ~bytes:8 123)
    (fun cg ->
      Codegen.emit cg (Instr.Mov (Reg.RCX, Instr.Imm 16));
      Codegen.load_heap cg Instr.W8 ~dst:Reg.RBX ~addr:Reg.RCX ~offset:0;
      Codegen.emit cg (Instr.Mov (Reg.RAX, Instr.Reg Reg.RBX)))

(* Read-modify-write at an index loaded from the heap: the index is
   statically unbounded, so elision cannot fire — the second access has
   the same (reg, scale, disp) key and its check must be reused away. *)
let reuse_workload =
  Instance.workload ~name:"opt-reuse" ~heap_bytes:65536
    ~init:(fun mem ~heap_base ->
      Addr_space.poke mem ~addr:heap_base ~bytes:8 40;
      Addr_space.poke mem ~addr:(heap_base + 40) ~bytes:8 7)
    (fun cg ->
      Codegen.emit cg (Instr.Mov (Reg.RDX, Instr.Imm 0));
      Codegen.load_heap cg Instr.W8 ~dst:Reg.RCX ~addr:Reg.RDX ~offset:0;
      Codegen.load_heap cg Instr.W8 ~dst:Reg.RBX ~addr:Reg.RCX ~offset:0;
      Codegen.emit cg (Instr.Alu (Instr.Add, Reg.RBX, Instr.Imm 1));
      Codegen.store_heap cg Instr.W8 ~addr:Reg.RCX ~offset:0 ~src:(Instr.Reg Reg.RBX);
      Codegen.emit cg (Instr.Mov (Reg.RAX, Instr.Reg Reg.RBX)))

(* A loop that re-reads heap[k] where k is loop-invariant but statically
   unbounded: the per-iteration check must move to the preheader. *)
let hoist_iters = 100

let hoist_workload =
  Instance.workload ~name:"opt-hoist" ~heap_bytes:65536
    ~init:(fun mem ~heap_base ->
      Addr_space.poke mem ~addr:heap_base ~bytes:8 48;
      Addr_space.poke mem ~addr:(heap_base + 48) ~bytes:8 5)
    (fun cg ->
      Codegen.emit cg (Instr.Mov (Reg.RDX, Instr.Imm 0));
      Codegen.load_heap cg Instr.W8 ~dst:Reg.RCX ~addr:Reg.RDX ~offset:0;
      Codegen.emit cg (Instr.Mov (Reg.RAX, Instr.Imm 0));
      Codegen.emit cg (Instr.Mov (Reg.RBX, Instr.Imm hoist_iters));
      Codegen.label cg "loop";
      Codegen.load_heap cg Instr.W8 ~dst:Reg.R8 ~addr:Reg.RCX ~offset:0;
      Codegen.emit cg (Instr.Alu (Instr.Add, Reg.RAX, Instr.Reg Reg.R8));
      Codegen.emit cg (Instr.Alu (Instr.Sub, Reg.RBX, Instr.Imm 1));
      Codegen.emit cg (Instr.Cmp (Reg.RBX, Instr.Imm 0));
      Codegen.jcc cg Instr.Gt "loop")

let checked_strategies = [ Strategy.Bounds_checks; Strategy.Masking ]

let pass_changed name strategy w =
  let heap_size = Instance.round_to_wasm_page w.Instance.heap_bytes in
  let conv = Instance.opt_conv ~strategy ~heap_size in
  let prog = Instance.build_program ~strategy ~optimize:false w in
  match List.find_opt (fun r -> r.Driver.pass = name) (Driver.passes conv prog) with
  | Some r -> r.Driver.changed
  | None -> Alcotest.failf "pass %s missing from the pipeline" name

let test_elide_strips_provable_checks () =
  List.iter
    (fun strategy ->
      let tag = Strategy.to_string strategy in
      let ref_p = Instance.build_program ~strategy ~optimize:false elide_workload in
      let opt_p = Instance.build_program ~strategy ~optimize:true elide_workload in
      check_int (tag ^ ": reference has the check") 1 (check_count strategy ref_p);
      check_int (tag ^ ": check elided") 0 (check_count strategy opt_p);
      let off = run_measured ~strategy ~optimize:false elide_workload in
      let on = run_measured ~strategy ~optimize:true elide_workload in
      check_int (tag ^ ": reference result") 123 off.rax;
      check_int (tag ^ ": optimized result") 123 on.rax;
      check_bool (tag ^ ": fewer dynamic instrs") true (on.instrs < off.instrs);
      assert_safe ("elide/" ^ tag) strategy opt_p)
    checked_strategies

let test_reuse_drops_redundant_check () =
  List.iter
    (fun strategy ->
      let tag = Strategy.to_string strategy in
      let ref_p = Instance.build_program ~strategy ~optimize:false reuse_workload in
      let opt_p = Instance.build_program ~strategy ~optimize:true reuse_workload in
      check_int (tag ^ ": three checks in the reference") 3 (check_count strategy ref_p);
      (* constant-index check elided, store check reused: one survives *)
      check_int (tag ^ ": one check survives") 1 (check_count strategy opt_p);
      check_bool (tag ^ ": reuse pass fired") true (pass_changed "reuse" strategy reuse_workload >= 1);
      let off = run_measured ~strategy ~optimize:false reuse_workload in
      let on = run_measured ~strategy ~optimize:true reuse_workload in
      check_int (tag ^ ": reference result") 8 off.rax;
      check_int (tag ^ ": optimized result") 8 on.rax;
      assert_safe ("reuse/" ^ tag) strategy opt_p)
    checked_strategies

let test_hoist_moves_invariant_check () =
  List.iter
    (fun strategy ->
      let tag = Strategy.to_string strategy in
      check_bool (tag ^ ": hoist pass fired") true (pass_changed "hoist" strategy hoist_workload >= 1);
      let off = run_measured ~strategy ~optimize:false hoist_workload in
      let on = run_measured ~strategy ~optimize:true hoist_workload in
      check_int (tag ^ ": reference result") (5 * hoist_iters) off.rax;
      check_int (tag ^ ": optimized result") (5 * hoist_iters) on.rax;
      (* the hoisted check ran once instead of once per iteration *)
      let per_iter = match strategy with Strategy.Bounds_checks -> 3 | _ -> 2 in
      check_bool
        (Printf.sprintf "%s: saved >= %d dynamic instrs" tag (per_iter * (hoist_iters - 1)))
        true
        (off.instrs - on.instrs >= per_iter * (hoist_iters - 1));
      let opt_p = Instance.build_program ~strategy ~optimize:true hoist_workload in
      assert_safe ("hoist/" ^ tag) strategy opt_p)
    checked_strategies

(* ------------------------------------------------------------------ *)
(* Linear-scan register allocation                                      *)

let regalloc_pool = [ Reg.RBX; Reg.RSI; Reg.RDI; Reg.R8; Reg.R9; Reg.R10; Reg.R11 ]
let regalloc_scratch = [ Reg.R12; Reg.R15 ]
let regalloc_spill_base = Layout.globals_base + 0xC000

(* Seven simultaneously-live accumulators bumped in a loop, summed at
   the end: r_i = (i+1) + iters, so the sum is 28 + 7*iters. *)
let regalloc_iters = 50
let regalloc_expected = 28 + (List.length regalloc_pool * regalloc_iters)

let regalloc_workload =
  Instance.workload ~name:"opt-regalloc" ~heap_bytes:65536 (fun cg ->
      List.iteri (fun i r -> Codegen.emit cg (Instr.Mov (r, Instr.Imm (i + 1)))) regalloc_pool;
      Codegen.emit cg (Instr.Mov (Reg.RCX, Instr.Imm regalloc_iters));
      Codegen.label cg "loop";
      List.iter (fun r -> Codegen.emit cg (Instr.Alu (Instr.Add, r, Instr.Imm 1))) regalloc_pool;
      Codegen.emit cg (Instr.Alu (Instr.Sub, Reg.RCX, Instr.Imm 1));
      Codegen.emit cg (Instr.Cmp (Reg.RCX, Instr.Imm 0));
      Codegen.jcc cg Instr.Gt "loop";
      Codegen.emit cg (Instr.Mov (Reg.RAX, Instr.Imm 0));
      List.iter
        (fun r -> Codegen.emit cg (Instr.Alu (Instr.Add, Reg.RAX, Instr.Reg r)))
        regalloc_pool)

let test_regalloc_spills_preserve_results () =
  let stats = ref None in
  let transform p =
    match
      Regalloc.allocate ~code_base:Layout.code_base ~allocatable:regalloc_pool ~avail:4
        ~scratch:regalloc_scratch ~spill_base:regalloc_spill_base p
    with
    | Some (p', s) ->
      stats := Some s;
      p'
    | None -> Alcotest.fail "allocator refused a closed register loop"
  in
  let inst =
    Instance.instantiate ~strategy:Strategy.Hfi ~optimize:false ~transform regalloc_workload
  in
  let _, status = Instance.run_fast inst in
  check_bool "halted" true (status = Machine.Halted);
  check_int "result identical under spilling" regalloc_expected (Instance.result_rax inst);
  match !stats with
  | None -> Alcotest.fail "no stats captured"
  | Some s ->
    check_int "every pool register has an interval" (List.length regalloc_pool) s.Regalloc.intervals;
    check_int "three ranges lost the pool" 3 (List.length s.Regalloc.spilled);
    check_bool "reloads inserted" true (s.Regalloc.reloads > 0);
    check_bool "writebacks inserted" true (s.Regalloc.writebacks > 0)

let test_regalloc_full_pool_is_identity_on_results () =
  let transform p =
    match
      Regalloc.allocate ~code_base:Layout.code_base ~allocatable:regalloc_pool
        ~avail:(List.length regalloc_pool) ~scratch:regalloc_scratch
        ~spill_base:regalloc_spill_base p
    with
    | Some (p', s) ->
      check_int "nothing spilled with a full pool" 0 (List.length s.Regalloc.spilled);
      p'
    | None -> Alcotest.fail "allocator refused a closed register loop"
  in
  let inst =
    Instance.instantiate ~strategy:Strategy.Hfi ~optimize:false ~transform regalloc_workload
  in
  let _, status = Instance.run_fast inst in
  check_bool "halted" true (status = Machine.Halted);
  check_int "result" regalloc_expected (Instance.result_rax inst)

let test_regalloc_refusals () =
  let alloc prog =
    Regalloc.allocate ~code_base:Layout.code_base ~allocatable:regalloc_pool ~avail:4
      ~scratch:regalloc_scratch ~spill_base:regalloc_spill_base prog
  in
  (* Syscalls observe registers by the kernel ABI: renaming is unsound. *)
  check_bool "refuses syscalls" true
    (alloc (Program.of_instrs [| Instr.Mov (Reg.RBX, Instr.Imm 1); Instr.Syscall; Instr.Halt |])
    = None);
  (* A program READ of a scratch register would observe our clobbers. *)
  check_bool "refuses scratch reads" true
    (alloc (Program.of_instrs [| Instr.Mov (Reg.RAX, Instr.Reg Reg.R12); Instr.Halt |]) = None);
  (* Indirect flow defeats the static CFG. *)
  check_bool "refuses indirect jumps" true
    (alloc (Program.of_instrs [| Instr.Jmp_ind Reg.RBX; Instr.Halt |]) = None)

(* ------------------------------------------------------------------ *)
(* Opt-vs-reference differential over the Sightglass corpus             *)

let test_opt_backend_equivalence_and_reduction () =
  (* measure already fails the run if any optimized kernel's RAX
     diverges from the reference under any strategy; on top of that the
     acceptance bar is a >=15% dynamic-instruction reduction for the
     check-heavy schemes, and no strategy may regress. *)
  let rows = Hfi_experiments.Opt_backend.measure ~quick:true () in
  List.iter
    (fun r ->
      check_bool
        (r.Hfi_experiments.Opt_backend.strategy ^ ": no regression")
        true
        (r.Hfi_experiments.Opt_backend.instrs_on <= r.Hfi_experiments.Opt_backend.instrs_off))
    rows;
  let pct name =
    match List.find_opt (fun r -> r.Hfi_experiments.Opt_backend.strategy = name) rows with
    | Some r ->
      (1.0
      -. (float_of_int r.Hfi_experiments.Opt_backend.instrs_on
         /. float_of_int r.Hfi_experiments.Opt_backend.instrs_off))
      *. 100.0
    | None -> Alcotest.failf "strategy %s missing" name
  in
  check_bool "bounds-checks >= 15% fewer instrs" true (pct "bounds-checks" >= 15.0);
  check_bool "masking >= 15% fewer instrs" true (pct "masking" >= 15.0)

let suite =
  [
    Alcotest.test_case "mask_of_size basics" `Quick test_mask_of_size_basics;
    Alcotest.test_case "mask_of_size rejects non-positive" `Quick test_mask_of_size_rejects_nonpositive;
    Alcotest.test_case "mask_of_size saturates near max_int" `Quick test_mask_of_size_saturates;
    Alcotest.test_case "mask_of_size window covers the heap" `Quick test_mask_of_size_covers_window;
    Alcotest.test_case "dominator tree" `Quick test_dom_tree;
    Alcotest.test_case "natural loop detection" `Quick test_natural_loop;
    Alcotest.test_case "edit: branch to deleted instr" `Quick test_edit_branch_to_deleted;
    Alcotest.test_case "edit: branch to replacement body" `Quick test_edit_branch_to_replacement;
    Alcotest.test_case "edit: insert_before is fallthrough-only" `Quick
      test_edit_insert_before_skipped_by_branch;
    Alcotest.test_case "liveness across branches" `Quick test_liveness_branchy;
    Alcotest.test_case "rewrite: constant folding" `Quick test_rewrite_const_fold;
    Alcotest.test_case "rewrite: strength reduction" `Quick test_rewrite_strength_reduction;
    Alcotest.test_case "rewrite: add-zero identity" `Quick test_rewrite_add_zero_identity;
    Alcotest.test_case "dce: dead definition swept" `Quick test_dce_removes_dead_def;
    Alcotest.test_case "elide: provable checks stripped" `Quick test_elide_strips_provable_checks;
    Alcotest.test_case "reuse: redundant check dropped" `Quick test_reuse_drops_redundant_check;
    Alcotest.test_case "hoist: invariant check to preheader" `Quick test_hoist_moves_invariant_check;
    Alcotest.test_case "regalloc: spills preserve results" `Quick test_regalloc_spills_preserve_results;
    Alcotest.test_case "regalloc: full pool, no spills" `Quick
      test_regalloc_full_pool_is_identity_on_results;
    Alcotest.test_case "regalloc: refuses unsound programs" `Quick test_regalloc_refusals;
    Alcotest.test_case "opt-backend: equivalence + 15% reduction" `Slow
      test_opt_backend_equivalence_and_reduction;
  ]
