(* Static sandbox-safety verifier (lib/verify): domain lattice algebra,
   CFG edge cases, fixpoint verdicts over the Sightglass corpus, the
   planted in-sandbox region write (negative control), and the golden
   guard — verification is pure, so running it (with observability on)
   must not move a single modeled cycle. *)

open Hfi_isa
module Domain = Hfi_opt.Domain
module Cfg = Hfi_pipeline.Cfg
module Checks = Hfi_verify.Checks
module Vreport = Hfi_verify.Report
module Uop = Hfi_pipeline.Uop
module Strategy = Hfi_sfi.Strategy
module Layout = Hfi_wasm.Layout
module Instance = Hfi_wasm.Instance
module Sightglass = Hfi_workloads.Sightglass
module Obs = Hfi_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let dom = Alcotest.testable Domain.pp Domain.equal

(* ------------------------------------------------------------------ *)
(* Domain unit suite                                                    *)
(* ------------------------------------------------------------------ *)

let test_domain_masked () =
  (* disagreeing certain bits of a join become uncertain bits *)
  Alcotest.check dom "join folds disagreement into the mask"
    (Domain.masked ~base:0 ~mask:0x33)
    (Domain.join (Domain.masked ~base:0x10 ~mask:0x3) (Domain.masked ~base:0x20 ~mask:0x3));
  (* the normalizing constructor folds overlapping bits *)
  Alcotest.check dom "masked normalizes base bits out of the mask"
    (Domain.masked ~base:0x40 ~mask:0x0f)
    (Domain.masked ~base:0x40 ~mask:0x4f);
  check_bool "masked hull" true
    (Domain.bounds (Domain.masked ~base:0x100 ~mask:0xff) = Some (0x100, 0x1ff));
  (* And with a non-negative bitset confines ANY value — the SFI
     masking discharge, from top and even from a stack taint *)
  Alcotest.check dom "And #top confines"
    (Domain.masked ~base:0 ~mask:0xffff)
    (Domain.alu Instr.And Domain.top (Domain.const 0xffff));
  Alcotest.check dom "And stackish confines"
    (Domain.masked ~base:0 ~mask:0xffff)
    (Domain.alu Instr.And Domain.Stackish (Domain.const 0xffff));
  (* joining with an interval falls back to the hull *)
  Alcotest.check dom "masked/interval join hulls"
    (Domain.itv 0 0x200)
    (Domain.join (Domain.masked ~base:0 ~mask:0xff) (Domain.itv 0x100 0x200))

let test_domain_widen () =
  Alcotest.check dom "growing hi widens to +inf"
    (Domain.itv 0 max_int)
    (Domain.widen (Domain.itv 0 10) (Domain.itv 0 20));
  Alcotest.check dom "shrinking lo widens to -inf"
    (Domain.itv min_int 10)
    (Domain.widen (Domain.itv 0 10) (Domain.itv (-1) 10));
  Alcotest.check dom "stable interval does not widen"
    (Domain.itv 0 10)
    (Domain.widen (Domain.itv 0 10) (Domain.itv 2 8));
  (* the Masked lattice is finite: widening is just the join *)
  Alcotest.check dom "masked widens by join"
    (Domain.masked ~base:0 ~mask:0x3)
    (Domain.widen (Domain.masked ~base:0 ~mask:0x1) (Domain.masked ~base:0 ~mask:0x3))

(* Saturating arithmetic at the region boundary: overflow must never
   wrap an effective address back inside a window. *)
let test_domain_overflow_at_boundary () =
  let heap_lo = Layout.heap_base and heap_hi = Layout.heap_base + Layout.heap_max - 1 in
  (* index that would wrap past max_int saturates instead *)
  let ea = Domain.add (Domain.const max_int) (Domain.const Layout.heap_base) in
  check_bool "saturated add stays at max_int" true (Domain.bounds ea = Some (max_int, max_int));
  check_bool "saturated ea is not within the heap" false
    (Domain.within ea ~lo:heap_lo ~hi:heap_hi);
  (* a full-range index pushed to the heap base keeps the hull honest *)
  let ea = Domain.add (Domain.itv 0 max_int) (Domain.const Layout.heap_base) in
  check_bool "wide ea hull" true (Domain.bounds ea = Some (Layout.heap_base, max_int));
  check_bool "wide ea not provably confined" false (Domain.within ea ~lo:heap_lo ~hi:heap_hi);
  (* shifts and multiplies that could overflow degrade to top, they
     never produce a tight-but-wrong interval *)
  Alcotest.check dom "overflowing shl is top" Domain.top
    (Domain.alu Instr.Shl (Domain.itv 1 (1 lsl 40)) (Domain.const 30));
  Alcotest.check dom "overflowing mul is top" Domain.top
    (Domain.alu Instr.Mul (Domain.itv 0 (1 lsl 40)) (Domain.const (1 lsl 30)));
  (* in-range scaled index stays exact: the bounds-check shape *)
  Alcotest.check dom "exact scaled index"
    (Domain.itv 0 (1023 * 8))
    (Domain.alu Instr.Mul (Domain.itv 0 1023) (Domain.const 8))

let test_domain_refine () =
  (* the wasm2c bounds-check shape: jae @trap, fall edge refines Ult *)
  Alcotest.check dom "Ult refines top"
    (Domain.itv 0 99)
    (Domain.refine Instr.Ult Domain.top ~rhs:(Domain.itv 0 100));
  Alcotest.check dom "Ult cuts negatives"
    (Domain.itv 0 50)
    (Domain.refine Instr.Ult (Domain.itv (-5) 50) ~rhs:(Domain.itv 0 100));
  (* an unsigned compare against an unknown bound proves nothing *)
  Alcotest.check dom "Ult against top is a no-op" Domain.top
    (Domain.refine Instr.Ult Domain.top ~rhs:Domain.top);
  Alcotest.check dom "Lt trims the high side only"
    (Domain.itv 0 9)
    (Domain.refine Instr.Lt (Domain.itv 0 100) ~rhs:(Domain.const 10));
  Alcotest.check dom "contradiction refines to bot" Domain.Bot
    (Domain.refine Instr.Ult (Domain.itv 5 9) ~rhs:(Domain.const 0));
  (* stack taint is exempt from numeric refinement and confinement *)
  Alcotest.check dom "stackish survives meet" Domain.Stackish
    (Domain.meet_itv Domain.Stackish ~lo:0 ~hi:10);
  Alcotest.check dom "stackish + const stays stackish" Domain.Stackish
    (Domain.add Domain.Stackish (Domain.const 8));
  check_bool "stackish never provably within" false (Domain.within Domain.Stackish ~lo:min_int ~hi:max_int)

(* ------------------------------------------------------------------ *)
(* CFG edge cases                                                       *)
(* ------------------------------------------------------------------ *)

let spec = { Checks.strategy = Strategy.Guard_pages; code_base = Layout.code_base }

let build instrs =
  let prog = Program.of_instrs instrs in
  (prog, Cfg.build (Uop.decode_fresh prog ~code_base:Layout.code_base))

let verdict_of instrs =
  let prog = Program.of_instrs instrs in
  (Checks.verify spec prog).Vreport.verdict

let test_cfg_self_loop () =
  let _, cfg = build [| Instr.Jmp 0 |] in
  check_int "one block" 1 (Array.length cfg.Cfg.blocks);
  check_bool "self edge" true (cfg.Cfg.blocks.(0).Cfg.succs = [ 0 ]);
  (* the fixpoint terminates on the cycle and proves it safe *)
  check_str "verdict" "safe"
    (Vreport.verdict_name (verdict_of [| Instr.Alu (Instr.Add, Reg.RCX, Instr.Imm 1); Instr.Jmp 0 |]))

let test_cfg_back_edge () =
  let instrs =
    [|
      Instr.Mov (Reg.RCX, Instr.Imm 0);
      Instr.Alu (Instr.Add, Reg.RCX, Instr.Imm 1);
      Instr.Cmp (Reg.RCX, Instr.Imm 10);
      Instr.Jcc (Instr.Lt, 1);
      Instr.Halt;
    |]
  in
  let _, cfg = build instrs in
  check_int "three blocks" 3 (Array.length cfg.Cfg.blocks);
  let body = cfg.Cfg.blocks.(cfg.Cfg.block_of_instr.(1)) in
  check_bool "back edge to itself" true (List.mem body.Cfg.id body.Cfg.succs);
  check_str "verdict" "safe" (Vreport.verdict_name (verdict_of instrs))

let test_cfg_unreachable_block () =
  let instrs = [| Instr.Jmp 2; Instr.Alu (Instr.Add, Reg.RAX, Instr.Imm 1); Instr.Halt |] in
  let _, cfg = build instrs in
  check_int "three blocks" 3 (Array.length cfg.Cfg.blocks);
  let r = Cfg.reachable cfg in
  check_bool "skipped block is unreachable" false r.(cfg.Cfg.block_of_instr.(1));
  check_bool "landing block is reachable" true r.(cfg.Cfg.block_of_instr.(2));
  (* unreachable code is never analyzed and never degrades the verdict *)
  check_str "verdict" "safe" (Vreport.verdict_name (verdict_of instrs))

let test_cfg_ret_without_call () =
  match verdict_of [| Instr.Ret |] with
  | Vreport.Unknown rs ->
    check_bool "names the empty call stack" true
      (List.exists (fun (r : Vreport.reason) -> r.Vreport.what = "ret reachable with an empty call stack") rs)
  | v -> Alcotest.failf "expected unknown, got %s" (Vreport.verdict_name v)

let test_cfg_ret_with_call () =
  (* call 2; halt; ret — the ret always has a frame, so no degradation *)
  check_str "verdict" "safe"
    (Vreport.verdict_name (verdict_of [| Instr.Call 2; Instr.Halt; Instr.Ret |]))

let test_cfg_indirect_unresolved () =
  (* rdtsc leaves RAX unconstrained: the indirect target set is empty *)
  match verdict_of [| Instr.Rdtsc Reg.RAX; Instr.Jmp_ind Reg.RAX |] with
  | Vreport.Unknown rs ->
    check_bool "names the unresolved branch" true
      (List.exists (fun (r : Vreport.reason) -> r.Vreport.what = "unresolved indirect branch target") rs)
  | v -> Alcotest.failf "expected unknown, got %s" (Vreport.verdict_name v)

(* Indirect jump through a constant: resolvable to a block head (safe),
   to a mid-block boundary (unknown), or to a non-boundary (unsafe). *)
let test_cfg_indirect_resolved () =
  let prog_for target =
    [| Instr.Mov (Reg.RAX, Instr.Imm target); Instr.Jmp_ind Reg.RAX; Instr.Halt |]
  in
  (* immediates are variable-length, so the target address feeds back
     into the layout: iterate to a fixed point *)
  let offset_of k target = Program.byte_offset (Program.of_instrs (prog_for target)) k in
  let rec settle k guess =
    let addr = Layout.code_base + offset_of k guess in
    if addr = guess then addr else settle k addr
  in
  let head_addr = settle 2 0 in
  let p1 = Program.of_instrs (prog_for head_addr) in
  check_int "stable layout" (head_addr - Layout.code_base) (Program.byte_offset p1 2);
  check_str "block-head target is safe" "safe"
    (Vreport.verdict_name (Checks.verify spec p1).Vreport.verdict);
  let mid_addr = settle 1 0 in
  (match (Checks.verify spec (Program.of_instrs (prog_for mid_addr))).Vreport.verdict with
  | Vreport.Unknown rs ->
    check_bool "mid-block target degrades" true
      (List.exists
         (fun (r : Vreport.reason) -> r.Vreport.what = "indirect target lands mid-block (not analyzed)")
         rs)
  | v -> Alcotest.failf "expected unknown, got %s" (Vreport.verdict_name v));
  match (Checks.verify spec (Program.of_instrs (prog_for (Layout.code_base + 1)))).Vreport.verdict with
  | Vreport.Unsafe vs ->
    check_bool "non-boundary target is a CFI violation" true
      (List.exists (fun (v : Vreport.violation) -> v.Vreport.property = Vreport.Cfi) vs)
  | v -> Alcotest.failf "expected unsafe, got %s" (Vreport.verdict_name v)

(* Direct branch out of the program: always a CFI violation. *)
let test_cfg_branch_out () =
  match verdict_of [| Instr.Jmp 99 |] with
  | Vreport.Unsafe vs ->
    check_bool "out-of-program branch" true
      (List.exists (fun (v : Vreport.violation) -> v.Vreport.property = Vreport.Cfi) vs)
  | v -> Alcotest.failf "expected unsafe, got %s" (Vreport.verdict_name v)

(* ------------------------------------------------------------------ *)
(* Corpus verdicts and the SFI discipline                               *)
(* ------------------------------------------------------------------ *)

(* Every Sightglass kernel under every strategy. The two guard-pages
   Unknowns of the old non-relational domain (base64's uncompared
   output cursor, sieve's widened multiply input) are discharged by the
   v2 relational domain — affine facts and threshold widening — so the
   corpus is all-Safe (EXPERIMENTS.md). *)
let expected_unknown : (string * Strategy.t) list = []

let test_corpus_verdicts () =
  List.iter
    (fun (name, w) ->
      List.iter
        (fun s ->
          let r = Checks.verify_workload ~strategy:s w in
          let expect = if List.mem (name, s) expected_unknown then "unknown" else "safe" in
          check_str
            (Printf.sprintf "%s/%s" name (Strategy.to_string s))
            expect
            (Vreport.verdict_name r.Vreport.verdict))
        Strategy.all)
    Sightglass.all

(* A raw store outside every sandbox window under a software scheme is
   an SFI-discipline violation, not an Unknown. *)
let test_sfi_escape_unsafe () =
  let instrs =
    [|
      Instr.Store (Instr.W8, Instr.mem ~disp:0x3000_0000 (), Instr.Imm 1);
      Instr.Halt;
    |]
  in
  match (Checks.verify { spec with Checks.strategy = Strategy.Bounds_checks }
           (Program.of_instrs instrs)).Vreport.verdict
  with
  | Vreport.Unsafe vs ->
    let v = List.hd vs in
    check_bool "sfi property" true (v.Vreport.property = Vreport.Sfi_discipline);
    check_int "names instruction 0" 0 v.Vreport.index
  | v -> Alcotest.failf "expected unsafe, got %s" (Vreport.verdict_name v)

(* ------------------------------------------------------------------ *)
(* Negative control: in-sandbox region write                            *)
(* ------------------------------------------------------------------ *)

let escape_workload =
  let region : Hfi_iface.region =
    Hfi_iface.Explicit_data
      {
        base_address = 0x3000_0000 - 16;
        bound = 4096 + 16;
        permission_read = true;
        permission_write = true;
        is_large_region = false;
      }
  in
  Instance.workload ~name:"escape" (fun c ->
      Hfi_wasm.Codegen.emit c (Instr.Hfi_set_region (Layout.heap_region_slot, region));
      Hfi_wasm.Codegen.emit c
        (Instr.Hstore (Layout.heap_hmov_region, Instr.W8, Instr.mem ~disp:16 (), Instr.Imm 0xBAD));
      Hfi_wasm.Codegen.emit c (Instr.Mov (Reg.RAX, Instr.Imm 0)))

let test_negative_control () =
  let r = Checks.verify_workload ~strategy:Strategy.Hfi escape_workload in
  match r.Vreport.verdict with
  | Vreport.Unsafe vs ->
    let v =
      try
        List.find
          (fun (v : Vreport.violation) ->
            v.Vreport.property = Vreport.Hfi_invariant
            && v.Vreport.detail = "region register written inside the sandbox")
          vs
      with Not_found -> Alcotest.fail "no region-write violation reported"
    in
    (* the violation names the offending instruction *)
    let prog = Instance.build_program ~strategy:Strategy.Hfi escape_workload in
    (match (Program.instrs prog).(v.Vreport.index) with
    | Instr.Hfi_set_region (slot, _) -> check_int "offending slot" Layout.heap_region_slot slot
    | other ->
      Alcotest.failf "violation points at %s, not the set_region" (Instr.to_string other))
  | v -> Alcotest.failf "expected unsafe, got %s" (Vreport.verdict_name v)

(* Report rendering must stay stable: the CLI, the fuzz harness, and CI
   all dispatch on these strings. *)
let test_report_format () =
  let r = Checks.verify_workload ~strategy:Strategy.Hfi (Sightglass.find "fib2") in
  check_str "verdict name" "safe" (Vreport.verdict_name r.Vreport.verdict);
  let s = Vreport.to_string r in
  check_bool "to_string carries target" true
    (String.length s >= 4 && String.sub s 0 4 = "fib2");
  let j = Vreport.to_json r in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "json verdict" true (contains {|"verdict":"safe"|} j);
  check_bool "json target" true (contains {|"target":"fib2"|} j)

(* ------------------------------------------------------------------ *)
(* Relational domain (v2): facts, thresholds, and the two discharges    *)
(* ------------------------------------------------------------------ *)

module Rel = Hfi_verify.Rel
module Vstate = Hfi_verify.Vstate
module Proof = Hfi_verify.Proof
module Proofcheck = Hfi_verify.Proofcheck
module Vcache = Hfi_verify.Verdict_cache

let ircx = Reg.index Reg.RCX
let irdi = Reg.index Reg.RDI
let no_facts () = Array.make Reg.count None
let const_regs l =
  Array.init Reg.count (fun i ->
      match List.assoc_opt i l with Some v -> Domain.const v | None -> Domain.const 0)

(* The base64 shape: between loop entry (RCX=0, RDI=16384) and the
   first back edge (RCX=1, RDI=16388) the output cursor moved 4 per
   iteration — the join must birth RDI = 4*RCX + 16384. *)
let test_rel_inference () =
  let a = const_regs [ (ircx, 0); (irdi, 16384) ] in
  let b = const_regs [ (ircx, 1); (irdi, 16388) ] in
  match Rel.join_facts irdi (no_facts ()) a (no_facts ()) b with
  | Some f ->
    check_int "base" ircx f.Rel.base;
    check_int "stride" 4 f.Rel.k;
    check_int "offset lo" 16384 f.Rel.lo;
    check_int "offset hi" 16384 f.Rel.hi
  | None -> Alcotest.fail "no fact inferred from the lockstep pair"

(* Constant increments maintain the fact by offset compensation: the
   subject's own +1 shifts the offset up, the base's +1 shifts every
   dependent fact down by its stride. *)
let test_rel_compensation () =
  let facts = no_facts () in
  facts.(irdi) <- Some { Rel.base = ircx; k = 4; lo = 16384; hi = 16384 };
  Rel.add_imm facts irdi 1;
  (match facts.(irdi) with
  | Some f -> check_int "own add shifts offset" 16385 f.Rel.lo
  | None -> Alcotest.fail "fact lost on own increment");
  Rel.add_imm facts ircx 1;
  (match facts.(irdi) with
  | Some f -> check_int "base add compensates -k" (16385 - 4) f.Rel.lo
  | None -> Alcotest.fail "fact lost on base increment");
  (* a non-affine write to the base kills dependents *)
  Rel.kill facts ircx;
  check_bool "dependent fact killed" true (facts.(irdi) = None)

(* tighten concretizes the fact at a use site: RDI itself may have
   widened to top, but 4*[0,1023] + 16384 pins the store address. *)
let test_rel_tighten_and_refine () =
  let facts = no_facts () in
  facts.(irdi) <- Some { Rel.base = ircx; k = 4; lo = 16384; hi = 16384 };
  let regs = Array.make Reg.count (Domain.const 0) in
  regs.(ircx) <- Domain.itv 0 1023;
  regs.(irdi) <- Domain.top;
  Alcotest.check dom "tighten pins the cursor"
    (Domain.itv 16384 (16384 + (4 * 1023)))
    (Rel.tighten facts regs irdi);
  (* the sieve shape backwards: cmp on RDX = 2*RCX bounds RCX too *)
  let f = { Rel.base = ircx; k = 2; lo = 0; hi = 0 } in
  Alcotest.check dom "branch refinement flows to the base"
    (Domain.itv 2 4095)
    (Rel.refine_base f ~refined:(Domain.itv 4 8191) (Domain.itv 2 10_000))

let test_rel_threshold_widening () =
  let thresholds = [| 0; 1024; 8192 |] in
  (* a growing bound parks at the nearest enclosing threshold... *)
  Alcotest.check dom "hi parks at the compare immediate"
    (Domain.itv 0 1024)
    (Rel.widen_dom ~thresholds (Domain.itv 0 10) (Domain.itv 0 20));
  Alcotest.check dom "next escalation takes the next rung"
    (Domain.itv 0 8192)
    (Rel.widen_dom ~thresholds (Domain.itv 0 1024) (Domain.itv 0 1025));
  (* ...and past the last rung, at infinity — termination is preserved *)
  Alcotest.check dom "past the ladder lies infinity"
    (Domain.itv 0 max_int)
    (Rel.widen_dom ~thresholds (Domain.itv 0 8192) (Domain.itv 0 9000));
  Alcotest.check dom "stable bounds do not move"
    (Domain.itv 0 10)
    (Rel.widen_dom ~thresholds (Domain.itv 0 10) (Domain.itv 2 8))

(* The two guard-pages Unknowns the relational domain discharges, under
   both lowerings: these are the tentpole regression pins. *)
let test_discharged_unknowns () =
  List.iter
    (fun opt ->
      Hfi_opt.Driver.with_enabled opt (fun () ->
          List.iter
            (fun name ->
              let r =
                Checks.verify_workload ~strategy:Strategy.Guard_pages (Sightglass.find name)
              in
              check_str
                (Printf.sprintf "%s/guard-pages (opt %b)" name opt)
                "safe"
                (Vreport.verdict_name r.Vreport.verdict))
            [ "base64"; "sieve" ]))
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Proof artifacts: emission, exact JSON round-trip, revalidation       *)
(* ------------------------------------------------------------------ *)

let test_proof_roundtrip () =
  List.iter
    (fun name ->
      let w = Sightglass.find name in
      let r, p =
        Checks.verify_workload_with_proof ~strategy:Strategy.Guard_pages w
      in
      check_str (name ^ " verdict") "safe" (Vreport.verdict_name r.Vreport.verdict);
      match p with
      | None -> Alcotest.failf "%s: safe verdict without a proof" name
      | Some p ->
        (match Proofcheck.check_workload ~strategy:Strategy.Guard_pages w p with
        | Proofcheck.Accepted -> ()
        | Proofcheck.Rejected es ->
          Alcotest.failf "%s: fresh proof rejected: %s" name (String.concat "; " es));
        let s = Proof.to_json p in
        (match Proof.of_json_string s with
        | Error e -> Alcotest.failf "%s: round-trip parse failed: %s" name e
        | Ok p' ->
          (* byte-exact round-trip: serializing the parse reproduces the
             artifact, so nothing (63-bit bounds included) was lossy *)
          check_str (name ^ " json round-trip") s (Proof.to_json p');
          (match Proofcheck.check_workload ~strategy:Strategy.Guard_pages w p' with
          | Proofcheck.Accepted -> ()
          | Proofcheck.Rejected es ->
            Alcotest.failf "%s: round-tripped proof rejected: %s" name
              (String.concat "; " es))))
    [ "sieve"; "base64"; "ackermann" ]

(* A proof emitted under one strategy must not certify another, and a
   checker from a different verifier version must refuse it. *)
let test_proof_binding () =
  let w = Sightglass.find "fib2" in
  let _, p = Checks.verify_workload_with_proof ~strategy:Strategy.Hfi w in
  let p = Option.get p in
  (match Proofcheck.check_workload ~strategy:Strategy.Guard_pages w p with
  | Proofcheck.Rejected _ -> ()
  | Proofcheck.Accepted -> Alcotest.fail "strategy mismatch accepted");
  let stale = { p with Proof.verifier_version = Checks.verifier_version + 1 } in
  match Proofcheck.check_workload ~strategy:Strategy.Hfi w stale with
  | Proofcheck.Rejected _ -> ()
  | Proofcheck.Accepted -> Alcotest.fail "verifier-version mismatch accepted"

(* ------------------------------------------------------------------ *)
(* Persistent verdict cache: round-trip under an explicit directory     *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hfi-vcache-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_verdict_cache_roundtrip () =
  with_temp_dir (fun dir ->
      let strategy = Strategy.Guard_pages in
      let code_base = Layout.code_base in
      let w = Sightglass.find "sieve" in
      let prog = Instance.build_program ~strategy w in
      let fingerprint = Program.fingerprint prog in
      check_bool "empty cache misses" true
        (Vcache.find_in ~dir ~fingerprint ~strategy ~code_base = None);
      let r = Checks.verify ~name:"sieve" { Checks.strategy; code_base } prog in
      Vcache.store_in ~dir ~fingerprint ~strategy ~code_base r;
      (match Vcache.find_in ~dir ~fingerprint ~strategy ~code_base with
      | None -> Alcotest.fail "stored entry not found"
      | Some r' -> check_str "report round-trips" (Vreport.to_json r) (Vreport.to_json r'));
      (* an unsafe report round-trips its violations, in order *)
      let ru = Checks.verify_workload ~strategy:Strategy.Hfi escape_workload in
      Vcache.store_in ~dir ~fingerprint:"escape-fp" ~strategy ~code_base ru;
      (match Vcache.find_in ~dir ~fingerprint:"escape-fp" ~strategy ~code_base with
      | None -> Alcotest.fail "unsafe entry not found"
      | Some r' -> check_str "unsafe round-trips" (Vreport.to_json ru) (Vreport.to_json r'));
      (* key separation: a different strategy never sees the entry *)
      check_bool "strategy separates keys" true
        (Vcache.find_in ~dir ~fingerprint ~strategy:Strategy.Hfi ~code_base = None);
      (* a corrupt entry is a miss, not an error *)
      let k = Vcache.key ~fingerprint ~strategy ~code_base in
      let oc = open_out_bin (Filename.concat dir (k ^ ".json")) in
      output_string oc "{ corrupt";
      close_out oc;
      check_bool "corrupt entry is a miss" true
        (Vcache.find_in ~dir ~fingerprint ~strategy ~code_base = None))

(* ------------------------------------------------------------------ *)
(* Sweep determinism: jobs=1 and jobs=4 produce identical artifacts     *)
(* ------------------------------------------------------------------ *)

let test_sweep_jobs_deterministic () =
  let kernels =
    List.filter (fun (n, _) -> List.mem n [ "base64"; "sieve"; "fib2"; "keccak" ])
      Sightglass.all
  in
  let strategies = [ Strategy.Guard_pages; Strategy.Hfi ] in
  let s1 = Hfi_verify.Sweep.run ~jobs:1 ~strategies kernels in
  let s4 = Hfi_verify.Sweep.run ~jobs:4 ~strategies kernels in
  check_str "json identical" (Hfi_verify.Sweep.to_json s1) (Hfi_verify.Sweep.to_json s4);
  check_str "table identical" (Hfi_verify.Sweep.table s1) (Hfi_verify.Sweep.table s4);
  check_str "summary identical" (Hfi_verify.Sweep.summary s1) (Hfi_verify.Sweep.summary s4);
  check_int "all safe" 0 (Hfi_verify.Sweep.exit_code s1)

(* ------------------------------------------------------------------ *)
(* Golden guard: verification is pure                                   *)
(* ------------------------------------------------------------------ *)

let with_obs f =
  let m0 = !Obs.metrics_enabled and t0 = !Obs.trace_enabled and p0 = !Obs.profile_enabled in
  Obs.set_metrics true;
  Obs.set_trace true;
  Obs.set_profile true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics m0;
      Obs.set_trace t0;
      Obs.set_profile p0)
    f

(* With all observability on AND verifier runs interleaved before the
   measurement, the Fig. 3 golden cycle pins must stay bit-identical:
   the verifier never touches machine, memory, HFI, or engine state. *)
let test_golden_with_verifier () =
  with_obs (fun () ->
      List.iter
        (fun (_, w) ->
          List.iter (fun s -> ignore (Checks.verify_workload ~strategy:s w)) Strategy.all)
        [ ("gimli", Sightglass.find "gimli"); ("keccak", Sightglass.find "keccak") ];
      let actual = Test_golden.compute () in
      List.iter2
        (fun (gb, gs, gc) (ab, as_, ac) ->
          check_str "bench order" gb ab;
          check_str "scheme order" gs as_;
          Alcotest.(check (float 0.0)) (Printf.sprintf "%s/%s cycles" gb gs) gc ac)
        Test_golden.golden actual)

let suite =
  [
    Alcotest.test_case "domain: masked join/normalize/And" `Quick test_domain_masked;
    Alcotest.test_case "domain: widening" `Quick test_domain_widen;
    Alcotest.test_case "domain: overflow at the region boundary" `Quick
      test_domain_overflow_at_boundary;
    Alcotest.test_case "domain: branch refinement" `Quick test_domain_refine;
    Alcotest.test_case "cfg: self-loop" `Quick test_cfg_self_loop;
    Alcotest.test_case "cfg: back edge" `Quick test_cfg_back_edge;
    Alcotest.test_case "cfg: unreachable block" `Quick test_cfg_unreachable_block;
    Alcotest.test_case "cfg: ret without call" `Quick test_cfg_ret_without_call;
    Alcotest.test_case "cfg: ret with call" `Quick test_cfg_ret_with_call;
    Alcotest.test_case "cfg: unresolved indirect" `Quick test_cfg_indirect_unresolved;
    Alcotest.test_case "cfg: resolved indirect (head/mid/non-boundary)" `Quick
      test_cfg_indirect_resolved;
    Alcotest.test_case "cfg: direct branch out of program" `Quick test_cfg_branch_out;
    Alcotest.test_case "corpus: verdicts across strategies" `Quick test_corpus_verdicts;
    Alcotest.test_case "rel: fact inference at a lockstep join" `Quick test_rel_inference;
    Alcotest.test_case "rel: offset compensation and kills" `Quick test_rel_compensation;
    Alcotest.test_case "rel: tighten at use, refine backwards" `Quick
      test_rel_tighten_and_refine;
    Alcotest.test_case "rel: threshold widening ladder" `Quick test_rel_threshold_widening;
    Alcotest.test_case "v2 discharges the two guard-pages unknowns" `Quick
      test_discharged_unknowns;
    Alcotest.test_case "proof: emit, round-trip, revalidate" `Quick test_proof_roundtrip;
    Alcotest.test_case "proof: bound to strategy and verifier version" `Quick
      test_proof_binding;
    Alcotest.test_case "verdict cache: round-trip, separation, corruption" `Quick
      test_verdict_cache_roundtrip;
    Alcotest.test_case "sweep: jobs=1 == jobs=4" `Quick test_sweep_jobs_deterministic;
    Alcotest.test_case "sfi: raw out-of-window store is unsafe" `Quick test_sfi_escape_unsafe;
    Alcotest.test_case "negative control: in-sandbox region write" `Quick test_negative_control;
    Alcotest.test_case "report: stable strings and json" `Quick test_report_format;
    Alcotest.test_case "golden pins with verifier + obs on" `Quick test_golden_with_verifier;
  ]
