(* Static sandbox-safety verifier (lib/verify): domain lattice algebra,
   CFG edge cases, fixpoint verdicts over the Sightglass corpus, the
   planted in-sandbox region write (negative control), and the golden
   guard — verification is pure, so running it (with observability on)
   must not move a single modeled cycle. *)

open Hfi_isa
module Domain = Hfi_opt.Domain
module Cfg = Hfi_pipeline.Cfg
module Checks = Hfi_verify.Checks
module Vreport = Hfi_verify.Report
module Uop = Hfi_pipeline.Uop
module Strategy = Hfi_sfi.Strategy
module Layout = Hfi_wasm.Layout
module Instance = Hfi_wasm.Instance
module Sightglass = Hfi_workloads.Sightglass
module Obs = Hfi_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let dom = Alcotest.testable Domain.pp Domain.equal

(* ------------------------------------------------------------------ *)
(* Domain unit suite                                                    *)
(* ------------------------------------------------------------------ *)

let test_domain_masked () =
  (* disagreeing certain bits of a join become uncertain bits *)
  Alcotest.check dom "join folds disagreement into the mask"
    (Domain.masked ~base:0 ~mask:0x33)
    (Domain.join (Domain.masked ~base:0x10 ~mask:0x3) (Domain.masked ~base:0x20 ~mask:0x3));
  (* the normalizing constructor folds overlapping bits *)
  Alcotest.check dom "masked normalizes base bits out of the mask"
    (Domain.masked ~base:0x40 ~mask:0x0f)
    (Domain.masked ~base:0x40 ~mask:0x4f);
  check_bool "masked hull" true
    (Domain.bounds (Domain.masked ~base:0x100 ~mask:0xff) = Some (0x100, 0x1ff));
  (* And with a non-negative bitset confines ANY value — the SFI
     masking discharge, from top and even from a stack taint *)
  Alcotest.check dom "And #top confines"
    (Domain.masked ~base:0 ~mask:0xffff)
    (Domain.alu Instr.And Domain.top (Domain.const 0xffff));
  Alcotest.check dom "And stackish confines"
    (Domain.masked ~base:0 ~mask:0xffff)
    (Domain.alu Instr.And Domain.Stackish (Domain.const 0xffff));
  (* joining with an interval falls back to the hull *)
  Alcotest.check dom "masked/interval join hulls"
    (Domain.itv 0 0x200)
    (Domain.join (Domain.masked ~base:0 ~mask:0xff) (Domain.itv 0x100 0x200))

let test_domain_widen () =
  Alcotest.check dom "growing hi widens to +inf"
    (Domain.itv 0 max_int)
    (Domain.widen (Domain.itv 0 10) (Domain.itv 0 20));
  Alcotest.check dom "shrinking lo widens to -inf"
    (Domain.itv min_int 10)
    (Domain.widen (Domain.itv 0 10) (Domain.itv (-1) 10));
  Alcotest.check dom "stable interval does not widen"
    (Domain.itv 0 10)
    (Domain.widen (Domain.itv 0 10) (Domain.itv 2 8));
  (* the Masked lattice is finite: widening is just the join *)
  Alcotest.check dom "masked widens by join"
    (Domain.masked ~base:0 ~mask:0x3)
    (Domain.widen (Domain.masked ~base:0 ~mask:0x1) (Domain.masked ~base:0 ~mask:0x3))

(* Saturating arithmetic at the region boundary: overflow must never
   wrap an effective address back inside a window. *)
let test_domain_overflow_at_boundary () =
  let heap_lo = Layout.heap_base and heap_hi = Layout.heap_base + Layout.heap_max - 1 in
  (* index that would wrap past max_int saturates instead *)
  let ea = Domain.add (Domain.const max_int) (Domain.const Layout.heap_base) in
  check_bool "saturated add stays at max_int" true (Domain.bounds ea = Some (max_int, max_int));
  check_bool "saturated ea is not within the heap" false
    (Domain.within ea ~lo:heap_lo ~hi:heap_hi);
  (* a full-range index pushed to the heap base keeps the hull honest *)
  let ea = Domain.add (Domain.itv 0 max_int) (Domain.const Layout.heap_base) in
  check_bool "wide ea hull" true (Domain.bounds ea = Some (Layout.heap_base, max_int));
  check_bool "wide ea not provably confined" false (Domain.within ea ~lo:heap_lo ~hi:heap_hi);
  (* shifts and multiplies that could overflow degrade to top, they
     never produce a tight-but-wrong interval *)
  Alcotest.check dom "overflowing shl is top" Domain.top
    (Domain.alu Instr.Shl (Domain.itv 1 (1 lsl 40)) (Domain.const 30));
  Alcotest.check dom "overflowing mul is top" Domain.top
    (Domain.alu Instr.Mul (Domain.itv 0 (1 lsl 40)) (Domain.const (1 lsl 30)));
  (* in-range scaled index stays exact: the bounds-check shape *)
  Alcotest.check dom "exact scaled index"
    (Domain.itv 0 (1023 * 8))
    (Domain.alu Instr.Mul (Domain.itv 0 1023) (Domain.const 8))

let test_domain_refine () =
  (* the wasm2c bounds-check shape: jae @trap, fall edge refines Ult *)
  Alcotest.check dom "Ult refines top"
    (Domain.itv 0 99)
    (Domain.refine Instr.Ult Domain.top ~rhs:(Domain.itv 0 100));
  Alcotest.check dom "Ult cuts negatives"
    (Domain.itv 0 50)
    (Domain.refine Instr.Ult (Domain.itv (-5) 50) ~rhs:(Domain.itv 0 100));
  (* an unsigned compare against an unknown bound proves nothing *)
  Alcotest.check dom "Ult against top is a no-op" Domain.top
    (Domain.refine Instr.Ult Domain.top ~rhs:Domain.top);
  Alcotest.check dom "Lt trims the high side only"
    (Domain.itv 0 9)
    (Domain.refine Instr.Lt (Domain.itv 0 100) ~rhs:(Domain.const 10));
  Alcotest.check dom "contradiction refines to bot" Domain.Bot
    (Domain.refine Instr.Ult (Domain.itv 5 9) ~rhs:(Domain.const 0));
  (* stack taint is exempt from numeric refinement and confinement *)
  Alcotest.check dom "stackish survives meet" Domain.Stackish
    (Domain.meet_itv Domain.Stackish ~lo:0 ~hi:10);
  Alcotest.check dom "stackish + const stays stackish" Domain.Stackish
    (Domain.add Domain.Stackish (Domain.const 8));
  check_bool "stackish never provably within" false (Domain.within Domain.Stackish ~lo:min_int ~hi:max_int)

(* ------------------------------------------------------------------ *)
(* CFG edge cases                                                       *)
(* ------------------------------------------------------------------ *)

let spec = { Checks.strategy = Strategy.Guard_pages; code_base = Layout.code_base }

let build instrs =
  let prog = Program.of_instrs instrs in
  (prog, Cfg.build (Uop.decode_fresh prog ~code_base:Layout.code_base))

let verdict_of instrs =
  let prog = Program.of_instrs instrs in
  (Checks.verify spec prog).Vreport.verdict

let test_cfg_self_loop () =
  let _, cfg = build [| Instr.Jmp 0 |] in
  check_int "one block" 1 (Array.length cfg.Cfg.blocks);
  check_bool "self edge" true (cfg.Cfg.blocks.(0).Cfg.succs = [ 0 ]);
  (* the fixpoint terminates on the cycle and proves it safe *)
  check_str "verdict" "safe"
    (Vreport.verdict_name (verdict_of [| Instr.Alu (Instr.Add, Reg.RCX, Instr.Imm 1); Instr.Jmp 0 |]))

let test_cfg_back_edge () =
  let instrs =
    [|
      Instr.Mov (Reg.RCX, Instr.Imm 0);
      Instr.Alu (Instr.Add, Reg.RCX, Instr.Imm 1);
      Instr.Cmp (Reg.RCX, Instr.Imm 10);
      Instr.Jcc (Instr.Lt, 1);
      Instr.Halt;
    |]
  in
  let _, cfg = build instrs in
  check_int "three blocks" 3 (Array.length cfg.Cfg.blocks);
  let body = cfg.Cfg.blocks.(cfg.Cfg.block_of_instr.(1)) in
  check_bool "back edge to itself" true (List.mem body.Cfg.id body.Cfg.succs);
  check_str "verdict" "safe" (Vreport.verdict_name (verdict_of instrs))

let test_cfg_unreachable_block () =
  let instrs = [| Instr.Jmp 2; Instr.Alu (Instr.Add, Reg.RAX, Instr.Imm 1); Instr.Halt |] in
  let _, cfg = build instrs in
  check_int "three blocks" 3 (Array.length cfg.Cfg.blocks);
  let r = Cfg.reachable cfg in
  check_bool "skipped block is unreachable" false r.(cfg.Cfg.block_of_instr.(1));
  check_bool "landing block is reachable" true r.(cfg.Cfg.block_of_instr.(2));
  (* unreachable code is never analyzed and never degrades the verdict *)
  check_str "verdict" "safe" (Vreport.verdict_name (verdict_of instrs))

let test_cfg_ret_without_call () =
  match verdict_of [| Instr.Ret |] with
  | Vreport.Unknown rs ->
    check_bool "names the empty call stack" true
      (List.exists (fun (r : Vreport.reason) -> r.Vreport.what = "ret reachable with an empty call stack") rs)
  | v -> Alcotest.failf "expected unknown, got %s" (Vreport.verdict_name v)

let test_cfg_ret_with_call () =
  (* call 2; halt; ret — the ret always has a frame, so no degradation *)
  check_str "verdict" "safe"
    (Vreport.verdict_name (verdict_of [| Instr.Call 2; Instr.Halt; Instr.Ret |]))

let test_cfg_indirect_unresolved () =
  (* rdtsc leaves RAX unconstrained: the indirect target set is empty *)
  match verdict_of [| Instr.Rdtsc Reg.RAX; Instr.Jmp_ind Reg.RAX |] with
  | Vreport.Unknown rs ->
    check_bool "names the unresolved branch" true
      (List.exists (fun (r : Vreport.reason) -> r.Vreport.what = "unresolved indirect branch target") rs)
  | v -> Alcotest.failf "expected unknown, got %s" (Vreport.verdict_name v)

(* Indirect jump through a constant: resolvable to a block head (safe),
   to a mid-block boundary (unknown), or to a non-boundary (unsafe). *)
let test_cfg_indirect_resolved () =
  let prog_for target =
    [| Instr.Mov (Reg.RAX, Instr.Imm target); Instr.Jmp_ind Reg.RAX; Instr.Halt |]
  in
  (* immediates are variable-length, so the target address feeds back
     into the layout: iterate to a fixed point *)
  let offset_of k target = Program.byte_offset (Program.of_instrs (prog_for target)) k in
  let rec settle k guess =
    let addr = Layout.code_base + offset_of k guess in
    if addr = guess then addr else settle k addr
  in
  let head_addr = settle 2 0 in
  let p1 = Program.of_instrs (prog_for head_addr) in
  check_int "stable layout" (head_addr - Layout.code_base) (Program.byte_offset p1 2);
  check_str "block-head target is safe" "safe"
    (Vreport.verdict_name (Checks.verify spec p1).Vreport.verdict);
  let mid_addr = settle 1 0 in
  (match (Checks.verify spec (Program.of_instrs (prog_for mid_addr))).Vreport.verdict with
  | Vreport.Unknown rs ->
    check_bool "mid-block target degrades" true
      (List.exists
         (fun (r : Vreport.reason) -> r.Vreport.what = "indirect target lands mid-block (not analyzed)")
         rs)
  | v -> Alcotest.failf "expected unknown, got %s" (Vreport.verdict_name v));
  match (Checks.verify spec (Program.of_instrs (prog_for (Layout.code_base + 1)))).Vreport.verdict with
  | Vreport.Unsafe vs ->
    check_bool "non-boundary target is a CFI violation" true
      (List.exists (fun (v : Vreport.violation) -> v.Vreport.property = Vreport.Cfi) vs)
  | v -> Alcotest.failf "expected unsafe, got %s" (Vreport.verdict_name v)

(* Direct branch out of the program: always a CFI violation. *)
let test_cfg_branch_out () =
  match verdict_of [| Instr.Jmp 99 |] with
  | Vreport.Unsafe vs ->
    check_bool "out-of-program branch" true
      (List.exists (fun (v : Vreport.violation) -> v.Vreport.property = Vreport.Cfi) vs)
  | v -> Alcotest.failf "expected unsafe, got %s" (Vreport.verdict_name v)

(* ------------------------------------------------------------------ *)
(* Corpus verdicts and the SFI discipline                               *)
(* ------------------------------------------------------------------ *)

(* Every Sightglass kernel under every strategy. Two guard-pages cases
   are honest Unknowns of the non-relational domain (EXPERIMENTS.md):
   base64's output cursor has no in-loop check at all, and sieve's
   scaled index goes through a potentially-overflowing multiply that a
   signed compare cannot re-bound. *)
let expected_unknown = [ ("base64", Strategy.Guard_pages); ("sieve", Strategy.Guard_pages) ]

let test_corpus_verdicts () =
  List.iter
    (fun (name, w) ->
      List.iter
        (fun s ->
          let r = Checks.verify_workload ~strategy:s w in
          let expect = if List.mem (name, s) expected_unknown then "unknown" else "safe" in
          check_str
            (Printf.sprintf "%s/%s" name (Strategy.to_string s))
            expect
            (Vreport.verdict_name r.Vreport.verdict))
        Strategy.all)
    Sightglass.all

(* A raw store outside every sandbox window under a software scheme is
   an SFI-discipline violation, not an Unknown. *)
let test_sfi_escape_unsafe () =
  let instrs =
    [|
      Instr.Store (Instr.W8, Instr.mem ~disp:0x3000_0000 (), Instr.Imm 1);
      Instr.Halt;
    |]
  in
  match (Checks.verify { spec with Checks.strategy = Strategy.Bounds_checks }
           (Program.of_instrs instrs)).Vreport.verdict
  with
  | Vreport.Unsafe vs ->
    let v = List.hd vs in
    check_bool "sfi property" true (v.Vreport.property = Vreport.Sfi_discipline);
    check_int "names instruction 0" 0 v.Vreport.index
  | v -> Alcotest.failf "expected unsafe, got %s" (Vreport.verdict_name v)

(* ------------------------------------------------------------------ *)
(* Negative control: in-sandbox region write                            *)
(* ------------------------------------------------------------------ *)

let escape_workload =
  let region : Hfi_iface.region =
    Hfi_iface.Explicit_data
      {
        base_address = 0x3000_0000 - 16;
        bound = 4096 + 16;
        permission_read = true;
        permission_write = true;
        is_large_region = false;
      }
  in
  Instance.workload ~name:"escape" (fun c ->
      Hfi_wasm.Codegen.emit c (Instr.Hfi_set_region (Layout.heap_region_slot, region));
      Hfi_wasm.Codegen.emit c
        (Instr.Hstore (Layout.heap_hmov_region, Instr.W8, Instr.mem ~disp:16 (), Instr.Imm 0xBAD));
      Hfi_wasm.Codegen.emit c (Instr.Mov (Reg.RAX, Instr.Imm 0)))

let test_negative_control () =
  let r = Checks.verify_workload ~strategy:Strategy.Hfi escape_workload in
  match r.Vreport.verdict with
  | Vreport.Unsafe vs ->
    let v =
      try
        List.find
          (fun (v : Vreport.violation) ->
            v.Vreport.property = Vreport.Hfi_invariant
            && v.Vreport.detail = "region register written inside the sandbox")
          vs
      with Not_found -> Alcotest.fail "no region-write violation reported"
    in
    (* the violation names the offending instruction *)
    let prog = Instance.build_program ~strategy:Strategy.Hfi escape_workload in
    (match (Program.instrs prog).(v.Vreport.index) with
    | Instr.Hfi_set_region (slot, _) -> check_int "offending slot" Layout.heap_region_slot slot
    | other ->
      Alcotest.failf "violation points at %s, not the set_region" (Instr.to_string other))
  | v -> Alcotest.failf "expected unsafe, got %s" (Vreport.verdict_name v)

(* Report rendering must stay stable: the CLI, the fuzz harness, and CI
   all dispatch on these strings. *)
let test_report_format () =
  let r = Checks.verify_workload ~strategy:Strategy.Hfi (Sightglass.find "fib2") in
  check_str "verdict name" "safe" (Vreport.verdict_name r.Vreport.verdict);
  let s = Vreport.to_string r in
  check_bool "to_string carries target" true
    (String.length s >= 4 && String.sub s 0 4 = "fib2");
  let j = Vreport.to_json r in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "json verdict" true (contains {|"verdict":"safe"|} j);
  check_bool "json target" true (contains {|"target":"fib2"|} j)

(* ------------------------------------------------------------------ *)
(* Golden guard: verification is pure                                   *)
(* ------------------------------------------------------------------ *)

let with_obs f =
  let m0 = !Obs.metrics_enabled and t0 = !Obs.trace_enabled and p0 = !Obs.profile_enabled in
  Obs.set_metrics true;
  Obs.set_trace true;
  Obs.set_profile true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics m0;
      Obs.set_trace t0;
      Obs.set_profile p0)
    f

(* With all observability on AND verifier runs interleaved before the
   measurement, the Fig. 3 golden cycle pins must stay bit-identical:
   the verifier never touches machine, memory, HFI, or engine state. *)
let test_golden_with_verifier () =
  with_obs (fun () ->
      List.iter
        (fun (_, w) ->
          List.iter (fun s -> ignore (Checks.verify_workload ~strategy:s w)) Strategy.all)
        [ ("gimli", Sightglass.find "gimli"); ("keccak", Sightglass.find "keccak") ];
      let actual = Test_golden.compute () in
      List.iter2
        (fun (gb, gs, gc) (ab, as_, ac) ->
          check_str "bench order" gb ab;
          check_str "scheme order" gs as_;
          Alcotest.(check (float 0.0)) (Printf.sprintf "%s/%s cycles" gb gs) gc ac)
        Test_golden.golden actual)

let suite =
  [
    Alcotest.test_case "domain: masked join/normalize/And" `Quick test_domain_masked;
    Alcotest.test_case "domain: widening" `Quick test_domain_widen;
    Alcotest.test_case "domain: overflow at the region boundary" `Quick
      test_domain_overflow_at_boundary;
    Alcotest.test_case "domain: branch refinement" `Quick test_domain_refine;
    Alcotest.test_case "cfg: self-loop" `Quick test_cfg_self_loop;
    Alcotest.test_case "cfg: back edge" `Quick test_cfg_back_edge;
    Alcotest.test_case "cfg: unreachable block" `Quick test_cfg_unreachable_block;
    Alcotest.test_case "cfg: ret without call" `Quick test_cfg_ret_without_call;
    Alcotest.test_case "cfg: ret with call" `Quick test_cfg_ret_with_call;
    Alcotest.test_case "cfg: unresolved indirect" `Quick test_cfg_indirect_unresolved;
    Alcotest.test_case "cfg: resolved indirect (head/mid/non-boundary)" `Quick
      test_cfg_indirect_resolved;
    Alcotest.test_case "cfg: direct branch out of program" `Quick test_cfg_branch_out;
    Alcotest.test_case "corpus: verdicts across strategies" `Quick test_corpus_verdicts;
    Alcotest.test_case "sfi: raw out-of-window store is unsafe" `Quick test_sfi_escape_unsafe;
    Alcotest.test_case "negative control: in-sandbox region write" `Quick test_negative_control;
    Alcotest.test_case "report: stable strings and json" `Quick test_report_format;
    Alcotest.test_case "golden pins with verifier + obs on" `Quick test_golden_with_verifier;
  ]
