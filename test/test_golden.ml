(* Golden modeled-cycle counts for the Fig. 3 synthetic SPEC workloads.

   These pin the cycle engine's exact output (hex float literals, so the
   comparison is bit-exact) for the three quick-mode profiles under all
   three isolation schemes. Any change to decode, dispatch, caches, TLB,
   predictor, or cost tables that moves a single modeled cycle fails
   here — performance work on the simulator must be behaviour-preserving.

   To regenerate after an *intentional* model change:
     HFI_GOLDEN_PRINT=1 dune exec test/test_main.exe -- test golden
   and paste the printed rows over [golden] below. *)

module Strategy = Hfi_sfi.Strategy
module Spec = Hfi_workloads.Spec
module Fig3 = Hfi_experiments.Fig3_spec

let schemes = [ Strategy.Guard_pages; Strategy.Bounds_checks; Strategy.Hfi ]

(* Same workloads as `bench --quick fig3`: first three profiles, iters
   divided by 8. *)
let compute () =
  let profiles = List.filteri (fun k _ -> k < 3) Spec.profiles in
  List.concat_map
    (fun (p : Spec.profile) ->
      List.map
        (fun s ->
          (p.Spec.name, Strategy.to_string s, Fig3.run_one s p ~iters_divisor:8))
        schemes)
    profiles

let golden =
  [
    ("400.perlbench", "guard-pages", 0x1.420284p+18); (* 329738.1 *)
    ("400.perlbench", "bounds-checks", 0x1.8bed3p+18); (* 405428.8 *)
    ("400.perlbench", "hfi", 0x1.3a25c4p+18); (* 321687.1 *)
    ("401.bzip2", "guard-pages", 0x1.35042p+18); (* 316432.5 *)
    ("401.bzip2", "bounds-checks", 0x1.8eb048p+18); (* 408257.1 *)
    ("401.bzip2", "hfi", 0x1.2f75dp+18); (* 310743.2 *)
    ("403.gcc", "guard-pages", 0x1.974918p+18); (* 417060.4 *)
    ("403.gcc", "bounds-checks", 0x1.020f2p+19); (* 528505.0 *)
    ("403.gcc", "hfi", 0x1.900de8p+18); (* 409655.6 *)
  ]

let test_golden_cycles () =
  let actual = compute () in
  if Sys.getenv_opt "HFI_GOLDEN_PRINT" <> None then begin
    print_newline ();
    List.iter
      (fun (b, s, c) -> Printf.printf "    (%S, %S, %h); (* %.1f *)\n" b s c c)
      actual
  end;
  List.iter2
    (fun (gb, gs, gc) (ab, as_, ac) ->
      Alcotest.(check string) "bench order" gb ab;
      Alcotest.(check string) "scheme order" gs as_;
      Alcotest.(check (float 0.0)) (Printf.sprintf "%s/%s cycles" gb gs) gc ac)
    golden actual

let suite = [ Alcotest.test_case "fig3 golden cycle counts" `Quick test_golden_cycles ]
