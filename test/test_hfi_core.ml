open Hfi_isa
open Hfi_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let kib64 = 1 lsl 16
let gib = 1 lsl 30

let icode ?(exec = true) base mask = Hfi_iface.Implicit_code { base_prefix = base; lsb_mask = mask; permission_exec = exec }

let idata ?(r = true) ?(w = true) base mask =
  Hfi_iface.Implicit_data { base_prefix = base; lsb_mask = mask; permission_read = r; permission_write = w }

let edata ?(r = true) ?(w = true) ?(large = true) base bound =
  Hfi_iface.Explicit_data
    { base_address = base; bound; permission_read = r; permission_write = w; is_large_region = large }

(* {1 Region validation} *)

let test_validate_implicit_ok () =
  check_bool "ok" true (Region.validate ~slot:2 (idata 0x100000 0xfffff) = Ok ())

let test_validate_mask_not_contiguous () =
  check_bool "bad mask" true
    (Region.validate ~slot:2 (idata 0x100000 0b1010) = Error Region.Mask_not_contiguous)

let test_validate_base_overlaps_mask () =
  check_bool "base in mask" true
    (Region.validate ~slot:2 (idata 0x100008 0xfff) = Error Region.Base_not_aligned)

let test_validate_kind_mismatch () =
  check_bool "data in code slot" true
    (Region.validate ~slot:0 (idata 0x100000 0xfff) = Error Region.Wrong_kind_for_slot);
  check_bool "code in data slot" true
    (Region.validate ~slot:2 (icode 0x100000 0xfff) = Error Region.Wrong_kind_for_slot);
  check_bool "explicit in implicit slot" true
    (Region.validate ~slot:2 (edata (16 * kib64) kib64) = Error Region.Wrong_kind_for_slot)

let test_validate_large_alignment () =
  check_bool "unaligned base" true
    (Region.validate ~slot:6 (edata 100 kib64) = Error Region.Large_not_64k_aligned);
  check_bool "unaligned bound" true
    (Region.validate ~slot:6 (edata kib64 100) = Error Region.Large_not_64k_aligned);
  check_bool "aligned ok" true (Region.validate ~slot:6 (edata kib64 (2 * kib64)) = Ok ())

let test_validate_large_max () =
  check_bool "256TiB ok" true
    (Region.validate ~slot:6 (edata 0 Region.large_max_bound) = Ok ());
  check_bool "over" true
    (Region.validate ~slot:6 (edata 0 (Region.large_max_bound + kib64)) = Error Region.Bound_too_large)

let test_validate_small_byte_granular () =
  check_bool "byte-granular ok" true (Region.validate ~slot:6 (edata ~large:false 1001 77) = Ok ())

let test_validate_small_4g_boundary () =
  (* A small region may not span a 4GiB-aligned address (§3.2). *)
  let base = (4 * gib) - 100 in
  check_bool "spans boundary" true
    (Region.validate ~slot:6 (edata ~large:false base 200) = Error Region.Small_spans_4g_boundary);
  check_bool "just below ok" true (Region.validate ~slot:6 (edata ~large:false base 100) = Ok ());
  check_bool "too big" true
    (Region.validate ~slot:6 (edata ~large:false 0 ((4 * gib) + 1)) = Error Region.Bound_too_large)

(* {1 Prefix matching} *)

let test_implicit_match () =
  check_bool "inside" true (Region.implicit_matches ~base_prefix:0x10000 ~lsb_mask:0xffff 0x1ffff);
  check_bool "base itself" true (Region.implicit_matches ~base_prefix:0x10000 ~lsb_mask:0xffff 0x10000);
  check_bool "below" false (Region.implicit_matches ~base_prefix:0x10000 ~lsb_mask:0xffff 0xffff);
  check_bool "above" false (Region.implicit_matches ~base_prefix:0x10000 ~lsb_mask:0xffff 0x20000)

(* {1 hmov checks (§4.2)} *)

let small_region = { Hfi_iface.base_address = 0x200000; bound = 4096; permission_read = true; permission_write = true; is_large_region = false }

let test_hmov_in_bounds () =
  match Region.hmov_access small_region ~index_value:100 ~scale:4 ~disp:8 ~bytes:8 ~write:false with
  | Ok c ->
    check_int "ea" (0x200000 + 408) c.Region.effective_address;
    check_int "32-bit comparator" 32 c.Region.comparator_bits
  | Error _ -> Alcotest.fail "should pass"

let test_hmov_out_of_bounds () =
  check_bool "oob" true
    (Region.hmov_access small_region ~index_value:4096 ~scale:1 ~disp:0 ~bytes:1 ~write:false
    = Error Msr.Out_of_bounds);
  (* Last byte must fit: offset+bytes > bound traps. *)
  check_bool "straddle end" true
    (Region.hmov_access small_region ~index_value:4092 ~scale:1 ~disp:0 ~bytes:8 ~write:false
    = Error Msr.Out_of_bounds);
  check_bool "exactly fits" true
    (Region.hmov_access small_region ~index_value:4088 ~scale:1 ~disp:0 ~bytes:8 ~write:false
    |> Result.is_ok)

let test_hmov_negative_offsets_trap () =
  check_bool "neg index" true
    (Region.hmov_access small_region ~index_value:(-1) ~scale:1 ~disp:0 ~bytes:1 ~write:false
    = Error Msr.Negative_offset);
  check_bool "neg disp" true
    (Region.hmov_access small_region ~index_value:0 ~scale:1 ~disp:(-8) ~bytes:1 ~write:false
    = Error Msr.Negative_offset)

let test_hmov_overflow_traps () =
  check_bool "overflow" true
    (Region.hmov_access small_region ~index_value:(1 lsl 61) ~scale:8 ~disp:0 ~bytes:1 ~write:false
    = Error Msr.Address_overflow)

let test_hmov_permissions () =
  let ro = { small_region with Hfi_iface.permission_write = false } in
  check_bool "read ok" true (Region.hmov_access ro ~index_value:0 ~scale:1 ~disp:0 ~bytes:1 ~write:false |> Result.is_ok);
  check_bool "write denied" true
    (Region.hmov_access ro ~index_value:0 ~scale:1 ~disp:0 ~bytes:1 ~write:true = Error Msr.Permission)

(* {1 HFI state machine} *)

let hybrid = Hfi_iface.default_hybrid_spec
let native_with h = { Hfi_iface.default_native_spec with exit_handler = Some h }

let test_enter_exit_basic () =
  let h = Hfi.create () in
  check_bool "disabled initially" false (Hfi.enabled h);
  check_bool "enter" true (Hfi.exec_enter h hybrid = Hfi.Continue);
  check_bool "enabled" true (Hfi.enabled h);
  check_bool "exit falls through" true (Hfi.exec_exit h = Hfi.Continue);
  check_bool "disabled after exit" false (Hfi.enabled h);
  check_bool "msr says exit" true (Hfi.exit_reason h = Msr.Exit_instruction)

let test_native_exit_jumps_to_handler () =
  let h = Hfi.create () in
  ignore (Hfi.exec_enter h (native_with 0xcafe));
  check_bool "jump to handler" true (Hfi.exec_exit h = Hfi.Jump 0xcafe)

let test_native_locks_region_registers () =
  let h = Hfi.create () in
  ignore (Hfi.exec_enter h (native_with 0x1000));
  (match Hfi.exec_set_region h ~slot:2 (idata 0x100000 0xfff) with
  | Hfi.Trap Msr.Privileged_in_native -> ()
  | _ -> Alcotest.fail "set_region must trap in native sandbox");
  check_bool "sandbox was torn down" false (Hfi.enabled h)

let test_hybrid_allows_region_updates () =
  let h = Hfi.create () in
  ignore (Hfi.exec_enter h hybrid);
  check_bool "allowed" true (Hfi.exec_set_region h ~slot:2 (idata 0x100000 0xfff) = Hfi.Continue);
  check_bool "serialized" true ((Hfi.stats h).Hfi.drains > 0)

let test_set_region_validates () =
  let h = Hfi.create () in
  match Hfi.exec_set_region h ~slot:2 (idata 0x100008 0xfff) with
  | Hfi.Trap Msr.Invalid_region_descriptor -> ()
  | _ -> Alcotest.fail "invalid descriptor must trap"

let test_region_readback () =
  let h = Hfi.create () in
  ignore (Hfi.exec_set_region h ~slot:6 (edata (16 * kib64) kib64));
  check_bool "readable" true (Hfi.region h 6 <> None);
  (match Hfi.exec_get_region h ~slot:6 with
  | Ok base -> check_int "base" (16 * kib64) base
  | Error _ -> Alcotest.fail "get_region");
  ignore (Hfi.exec_clear_region h ~slot:6);
  check_bool "cleared" true (Hfi.region h 6 = None)

let test_clear_all () =
  let h = Hfi.create () in
  ignore (Hfi.exec_set_region h ~slot:2 (idata 0x100000 0xfff));
  ignore (Hfi.exec_set_region h ~slot:6 (edata (16 * kib64) kib64));
  ignore (Hfi.exec_clear_all h);
  check_bool "slot2" true (Hfi.region h 2 = None);
  check_bool "slot6" true (Hfi.region h 6 = None)

let test_default_deny () =
  (* A sandbox with no regions mapped can access nothing (§3.2). *)
  let h = Hfi.create () in
  ignore (Hfi.exec_enter h hybrid);
  (match Hfi.check_data_access h ~addr:0x100000 ~bytes:8 `Read with
  | Error v -> check_bool "no matching region" true (v.Msr.cause = Msr.No_matching_region)
  | Ok () -> Alcotest.fail "default must deny");
  match Hfi.check_ifetch h ~addr:0x400000 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "ifetch must deny"

let test_first_match_wins () =
  (* §3.2: permissions come from the *first* matching region. A read-only
     region listed before an overlapping rw region denies writes. *)
  let h = Hfi.create () in
  ignore (Hfi.exec_set_region h ~slot:2 (idata ~r:true ~w:false 0x100000 0xfff));
  ignore (Hfi.exec_set_region h ~slot:3 (idata ~r:true ~w:true 0x100000 0xfff));
  ignore (Hfi.exec_enter h hybrid);
  check_bool "read allowed" true (Hfi.check_data_access h ~addr:0x100010 ~bytes:8 `Read = Ok ());
  match Hfi.check_data_access h ~addr:0x100010 ~bytes:8 `Write with
  | Error v -> check_bool "write denied by first match" true (v.Msr.cause = Msr.Permission)
  | Ok () -> Alcotest.fail "first-match should deny"

let test_checks_disabled_when_hfi_off () =
  let h = Hfi.create () in
  check_bool "off: everything allowed" true (Hfi.check_data_access h ~addr:0x1 ~bytes:8 `Write = Ok ())

let test_data_access_straddles_region_end () =
  let h = Hfi.create () in
  ignore (Hfi.exec_set_region h ~slot:2 (idata 0x100000 0xfff));
  ignore (Hfi.exec_enter h hybrid);
  check_bool "last inside ok" true (Hfi.check_data_access h ~addr:0x100ff8 ~bytes:8 `Read = Ok ());
  match Hfi.check_data_access h ~addr:0x100ffc ~bytes:8 `Read with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "straddling access must fault"

let test_syscall_interposition () =
  let h = Hfi.create () in
  ignore (Hfi.exec_enter h (native_with 0xbeef));
  (match Hfi.on_syscall h ~number:2 with
  | `Redirect 0xbeef -> ()
  | _ -> Alcotest.fail "native syscall must redirect");
  check_bool "msr has number" true (Hfi.exit_reason h = Msr.Syscall_trap 2);
  check_bool "sandbox exited" false (Hfi.enabled h)

let test_hybrid_syscalls_direct () =
  let h = Hfi.create () in
  ignore (Hfi.exec_enter h hybrid);
  check_bool "hybrid allowed" true (Hfi.on_syscall h ~number:2 = `Allow);
  check_bool "still sandboxed" true (Hfi.enabled h)

let test_reenter_after_syscall () =
  let h = Hfi.create () in
  ignore (Hfi.exec_enter h (native_with 0xbeef));
  ignore (Hfi.on_syscall h ~number:3);
  check_bool "outside" false (Hfi.enabled h);
  check_bool "reenter" true (Hfi.exec_reenter h = Hfi.Continue);
  check_bool "back inside" true (Hfi.enabled h);
  check_bool "still native" true (Hfi.in_native_sandbox h)

let test_violation_tears_down () =
  let h = Hfi.create () in
  ignore (Hfi.exec_enter h hybrid);
  let v = { Msr.addr = 0x1234; access = Msr.Read; cause = Msr.No_matching_region } in
  (match Hfi.record_violation h v with
  | Hfi.Trap (Msr.Bounds_violation v') -> check_int "addr preserved" 0x1234 v'.Msr.addr
  | _ -> Alcotest.fail "must trap");
  check_bool "disabled" false (Hfi.enabled h)

let test_hardware_fault_records () =
  let h = Hfi.create () in
  ignore (Hfi.exec_enter h hybrid);
  Hfi.on_hardware_fault h ~addr:0xdead;
  check_bool "disabled" false (Hfi.enabled h);
  check_bool "msr" true (Hfi.exit_reason h = Msr.Hardware_fault 0xdead)

let test_switch_on_exit_swaps_banks () =
  let h = Hfi.create () in
  (* Runtime sets itself up in a serialized hybrid sandbox (§3.4). *)
  ignore (Hfi.exec_set_region h ~slot:2 (idata 0x100000 0xfff));
  ignore (Hfi.exec_enter h { hybrid with is_serialized = true });
  (* Prepare the child's regions in the inactive bank (slots +10). *)
  ignore (Hfi.exec_set_region h ~slot:12 (idata 0x200000 0xfff));
  let child = { Hfi_iface.is_hybrid = false; is_serialized = false; switch_on_exit = true; exit_handler = Some 0x77 } in
  let drains_before = (Hfi.stats h).Hfi.drains in
  check_bool "soe enter" true (Hfi.exec_enter h child = Hfi.Continue);
  check_int "unserialized enter: no drain" drains_before (Hfi.stats h).Hfi.drains;
  (* Child's view: region slot 2 is the child's. *)
  check_bool "child regions active" true (Hfi.check_data_access h ~addr:0x200010 ~bytes:8 `Read = Ok ());
  check_bool "runtime regions inactive" false (Hfi.check_data_access h ~addr:0x100010 ~bytes:8 `Read = Ok ());
  (* Exit: swap back to runtime, HFI stays enabled. *)
  (match Hfi.exec_exit h with
  | Hfi.Jump 0x77 -> ()
  | _ -> Alcotest.fail "soe exit should land in handler");
  check_bool "still enabled (runtime sandbox)" true (Hfi.enabled h);
  check_bool "runtime regions back" true (Hfi.check_data_access h ~addr:0x100010 ~bytes:8 `Read = Ok ())

let test_xsave_xrstor_roundtrip () =
  let h = Hfi.create () in
  ignore (Hfi.exec_set_region h ~slot:6 (edata (16 * kib64) kib64));
  ignore (Hfi.exec_enter h hybrid);
  let saved = Hfi.xsave h in
  ignore (Hfi.exec_exit h);
  ignore (Hfi.exec_clear_all h);
  check_bool "restore" true (Hfi.xrstor h saved = Hfi.Continue);
  check_bool "enabled restored" true (Hfi.enabled h);
  check_bool "region restored" true (Hfi.region h 6 <> None)

let test_xrstor_traps_in_native () =
  let h = Hfi.create () in
  let saved = Hfi.xsave h in
  ignore (Hfi.exec_enter h (native_with 0x1));
  match Hfi.xrstor h saved with
  | Hfi.Trap Msr.Privileged_in_native -> ()
  | _ -> Alcotest.fail "xrstor with HFI flag must trap in native sandbox"

let test_enter_in_native_traps () =
  let h = Hfi.create () in
  ignore (Hfi.exec_enter h (native_with 0x1));
  match Hfi.exec_enter h hybrid with
  | Hfi.Trap Msr.Privileged_in_native -> ()
  | _ -> Alcotest.fail "nested enter in native must trap"

let test_msr_encoding () =
  check_int "no exit" 0 (Msr.encode Msr.No_exit);
  check_int "exit" 1 (Msr.encode Msr.Exit_instruction);
  check_int "syscall 5" 0x105 (Msr.encode (Msr.Syscall_trap 5))

let test_hw_budget () =
  check_int "registers" 20 Hw_budget.total_region_registers;
  check_bool "savings" true (Hw_budget.comparator_savings_ratio > 2.0)

(* Property tests: validated explicit regions never let hmov escape. *)
let prop_hmov_never_escapes =
  QCheck.Test.make ~name:"hmov stays within validated region bounds" ~count:500
    (QCheck.quad (QCheck.int_bound 10000) (QCheck.oneofl [ 1; 2; 4; 8 ]) (QCheck.int_bound 10000)
       (QCheck.oneofl [ 1; 2; 4; 8 ]))
    (fun (index_value, scale, disp, bytes) ->
      let r = { Hfi_iface.base_address = 0x300000; bound = 4096; permission_read = true; permission_write = true; is_large_region = false } in
      match Region.hmov_access r ~index_value ~scale ~disp ~bytes ~write:false with
      | Ok c ->
        c.Region.effective_address >= r.Hfi_iface.base_address
        && c.Region.effective_address + bytes <= r.Hfi_iface.base_address + r.Hfi_iface.bound
      | Error _ -> true)

let prop_implicit_match_is_range =
  QCheck.Test.make ~name:"prefix match equals range membership" ~count:500
    (QCheck.pair (QCheck.int_bound 0xfffff) (QCheck.int_bound 15))
    (fun (addr, k) ->
      let mask = (1 lsl k) - 1 in
      let base = 0x40000 land lnot mask in
      Region.implicit_matches ~base_prefix:base ~lsb_mask:mask addr
      = (addr >= base && addr < base + mask + 1))

let prop_validate_small_never_crosses =
  QCheck.Test.make ~name:"validated small regions never cross 4GiB lines" ~count:500
    (QCheck.pair QCheck.(int_bound (1 lsl 33)) QCheck.(int_bound (1 lsl 20)))
    (fun (base, bound) ->
      match
        Region.validate ~slot:6
          (Hfi_iface.Explicit_data
             { base_address = base; bound; permission_read = true; permission_write = true; is_large_region = false })
      with
      | Ok () -> bound = 0 || base / (4 * gib) = (base + bound - 1) / (4 * gib)
      | Error _ -> true)

let test_conformance_suite () =
  match Hfi_core.Conformance.failures () with
  | [] -> ()
  | (name, msg) :: _ -> Alcotest.failf "conformance check %S failed: %s" name msg

let test_conformance_covers_sections () =
  (* every check cites a paper section; the suite is non-trivial *)
  check_bool "19 checks" true (List.length Hfi_core.Conformance.all >= 18);
  List.iter
    (fun c -> check_bool "has section" true (String.length c.Hfi_core.Conformance.section > 0))
    Hfi_core.Conformance.all

let suite =
  [
    Alcotest.test_case "A.1 conformance checks all pass" `Quick test_conformance_suite;
    Alcotest.test_case "conformance coverage" `Quick test_conformance_covers_sections;
    Alcotest.test_case "validate implicit ok" `Quick test_validate_implicit_ok;
    Alcotest.test_case "validate mask contiguity" `Quick test_validate_mask_not_contiguous;
    Alcotest.test_case "validate base alignment" `Quick test_validate_base_overlaps_mask;
    Alcotest.test_case "validate kind mismatch" `Quick test_validate_kind_mismatch;
    Alcotest.test_case "validate large alignment" `Quick test_validate_large_alignment;
    Alcotest.test_case "validate large max bound" `Quick test_validate_large_max;
    Alcotest.test_case "validate small byte-granular" `Quick test_validate_small_byte_granular;
    Alcotest.test_case "validate small 4GiB rule" `Quick test_validate_small_4g_boundary;
    Alcotest.test_case "implicit prefix match" `Quick test_implicit_match;
    Alcotest.test_case "hmov in bounds" `Quick test_hmov_in_bounds;
    Alcotest.test_case "hmov out of bounds" `Quick test_hmov_out_of_bounds;
    Alcotest.test_case "hmov negative offsets" `Quick test_hmov_negative_offsets_trap;
    Alcotest.test_case "hmov overflow" `Quick test_hmov_overflow_traps;
    Alcotest.test_case "hmov permissions" `Quick test_hmov_permissions;
    Alcotest.test_case "enter/exit basic" `Quick test_enter_exit_basic;
    Alcotest.test_case "native exit handler" `Quick test_native_exit_jumps_to_handler;
    Alcotest.test_case "native locks regions" `Quick test_native_locks_region_registers;
    Alcotest.test_case "hybrid region updates" `Quick test_hybrid_allows_region_updates;
    Alcotest.test_case "set_region validates" `Quick test_set_region_validates;
    Alcotest.test_case "region readback/clear" `Quick test_region_readback;
    Alcotest.test_case "clear all regions" `Quick test_clear_all;
    Alcotest.test_case "default deny" `Quick test_default_deny;
    Alcotest.test_case "first match wins" `Quick test_first_match_wins;
    Alcotest.test_case "checks off when disabled" `Quick test_checks_disabled_when_hfi_off;
    Alcotest.test_case "straddling access faults" `Quick test_data_access_straddles_region_end;
    Alcotest.test_case "syscall interposition" `Quick test_syscall_interposition;
    Alcotest.test_case "hybrid direct syscalls" `Quick test_hybrid_syscalls_direct;
    Alcotest.test_case "reenter after syscall" `Quick test_reenter_after_syscall;
    Alcotest.test_case "violation teardown" `Quick test_violation_tears_down;
    Alcotest.test_case "hardware fault MSR" `Quick test_hardware_fault_records;
    Alcotest.test_case "switch-on-exit banks" `Quick test_switch_on_exit_swaps_banks;
    Alcotest.test_case "xsave/xrstor roundtrip" `Quick test_xsave_xrstor_roundtrip;
    Alcotest.test_case "xrstor traps in native" `Quick test_xrstor_traps_in_native;
    Alcotest.test_case "nested enter traps in native" `Quick test_enter_in_native_traps;
    Alcotest.test_case "msr encoding" `Quick test_msr_encoding;
    Alcotest.test_case "hw budget" `Quick test_hw_budget;
    QCheck_alcotest.to_alcotest prop_hmov_never_escapes;
    QCheck_alcotest.to_alcotest prop_implicit_match_is_range;
    QCheck_alcotest.to_alcotest prop_validate_small_never_crosses;
  ]
