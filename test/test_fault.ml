(* The structured fault model, the fault-injection planner, the
   differential fuzz campaign (with its planted-bug negative control),
   and the resilient experiment runner. *)

module Fault = Hfi_util.Fault
module Fault_inject = Hfi_util.Fault_inject
module Registry = Hfi_experiments.Registry
module Report = Hfi_experiments.Report
module Fuzz = Hfi_experiments.Fuzz

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Fault record ------------------------------------------------- *)

let test_fault_rendering () =
  let f =
    Fault.make ~region:8 ~pc:0x400012 ~cycle:84 ~sandbox:"fuzz"
      (Fault.Bounds_violation { addr = 0x3000; access = Fault.Read; cause = "no-matching-region" })
  in
  check_string "stable to_string"
    "bounds-violation: no-matching-region at 0x3000 (read) region=8 pc=0x400012 cycle=84 sandbox=fuzz"
    (Fault.to_string f);
  check_string "stable to_json"
    "{\"kind\":\"bounds-violation\",\"detail\":\"no-matching-region at 0x3000 (read)\",\"addr\":12288,\"region\":8,\"pc\":4194322,\"cycle\":84,\"sandbox\":\"fuzz\"}"
    (Fault.to_json f)

let test_fault_addr_lifted_from_kind () =
  let f = Fault.make (Fault.Hardware_fault { addr = 0x9999_0000; detail = "unmapped" }) in
  check_bool "addr lifted" true (f.Fault.addr = Some 0x9999_0000)

let test_fault_classes () =
  let modeled = Fault.make (Fault.Syscall_trap 39) in
  let injected = Fault.make (Fault.Injected { point = "tlb-state"; detail = "" }) in
  let crash = Fault.make (Fault.Crash { exn = "Failure(\"x\")"; backtrace = "" }) in
  let timeout = Fault.make (Fault.Timeout { limit_s = 5.0 }) in
  check_bool "syscall is modeled" true (Fault.is_modeled modeled);
  check_bool "injected is not modeled" false (Fault.is_modeled injected);
  check_bool "crash is not modeled" false (Fault.is_modeled crash);
  check_bool "timeout is not modeled" false (Fault.is_modeled timeout);
  check_bool "only injected is transient" true
    (Fault.is_transient injected
    && (not (Fault.is_transient modeled))
    && (not (Fault.is_transient crash))
    && not (Fault.is_transient timeout))

let test_of_exn_classification () =
  let bt = Printexc.get_raw_backtrace () in
  let injected = Fault.of_exn ~sandbox:"e1" (Fault.Transient "bit flip") bt in
  let crash = Fault.of_exn (Failure "broke") bt in
  check_bool "Transient -> Injected" true (Fault.is_transient injected);
  check_bool "sandbox recorded" true (injected.Fault.sandbox = Some "e1");
  check_bool "other exn -> Crash" true
    (match crash.Fault.kind with Fault.Crash _ -> true | _ -> false)

let test_msr_to_fault () =
  let f =
    Hfi_core.Msr.to_fault ~pc:0x400100 ~cycle:7
      (Hfi_core.Msr.Bounds_violation
         { Hfi_core.Msr.addr = 0x5000; access = Hfi_core.Msr.Write; cause = Hfi_core.Msr.Out_of_bounds })
  in
  check_bool "kind" true
    (f.Fault.kind
    = Fault.Bounds_violation { addr = 0x5000; access = Fault.Write; cause = "out-of-bounds" });
  check_bool "pc carried" true (f.Fault.pc = Some 0x400100);
  check_bool "cycle carried" true (f.Fault.cycle = Some 7)

(* --- Injection planner -------------------------------------------- *)

let test_plan_deterministic () =
  let plan seed =
    Fault_inject.plan (Fault_inject.create ~seed) ~points:Fault_inject.all_points ~steps:1000
      ~rate:0.1
  in
  check_bool "same seed, same plan" true (plan 7 = plan 7);
  check_bool "different seed, different plan" true (plan 7 <> plan 8)

let test_plan_shape () =
  let t = Fault_inject.create ~seed:3 in
  let plan = Fault_inject.plan t ~points:[ Fault_inject.Tlb_state ] ~steps:500 ~rate:0.1 in
  check_int "rate * steps injections" 50 (List.length plan);
  check_bool "steps in range and sorted" true
    (let rec ok last = function
       | [] -> true
       | (i : Fault_inject.injection) :: rest ->
         i.Fault_inject.step >= last && i.Fault_inject.step < 500 && ok i.Fault_inject.step rest
     in
     ok 0 plan);
  check_bool "only requested points" true
    (List.for_all (fun (i : Fault_inject.injection) -> i.Fault_inject.point = Fault_inject.Tlb_state) plan);
  check_int "zero rate, empty plan" 0
    (List.length (Fault_inject.plan t ~points:Fault_inject.all_points ~steps:100 ~rate:0.0));
  check_bool "no points is an error" true
    (match Fault_inject.plan t ~points:[] ~steps:100 ~rate:0.1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Injection planner edge cases --------------------------------- *)

let test_plan_zero_steps () =
  (* A zero-iteration run yields an empty plan (no "at least one"
     injection is conjured out of nothing), and an empty plan never
     trips the no-points check. *)
  let t = Fault_inject.create ~seed:11 in
  check_int "zero steps, empty plan" 0
    (List.length (Fault_inject.plan t ~points:Fault_inject.all_points ~steps:0 ~rate:0.5));
  check_int "zero steps with no points is fine" 0
    (List.length (Fault_inject.plan t ~points:[] ~steps:0 ~rate:0.5));
  (* ...but any positive rate on a real run injects at least once. *)
  check_bool "tiny rate still injects once" true
    (Fault_inject.plan t ~points:Fault_inject.all_points ~steps:10 ~rate:0.0001 <> [])

let test_plan_injection_at_cycle_zero () =
  (* A one-step run forces every injection onto committed-instruction
     index 0: the hook must fire before/at the first commit, and a
     benign rewrite there must be architecturally invisible. *)
  let t = Fault_inject.create ~seed:12 in
  let plan = Fault_inject.plan t ~points:Fault_inject.all_points ~steps:1 ~rate:3.0 in
  check_bool "plan not empty" true (plan <> []);
  check_bool "every step is 0" true
    (List.for_all (fun (i : Fault_inject.injection) -> i.Fault_inject.step = 0) plan);
  let outcome, canary_ok, _ =
    Fuzz.run_machine ~injection:(Fuzz.Region_rewrite 0) ~strategy:Hfi_sfi.Strategy.Hfi
      Fuzz.detector_module
  in
  check_bool "cycle-0 benign rewrite invisible" true
    (outcome = Hfi_wasm.Wasm_interp.Value Fuzz.detector_pattern);
  check_bool "canary intact" true canary_ok

let test_plan_injection_past_halt () =
  (* An injection scheduled beyond the program's committed-instruction
     count simply never fires: the run completes normally rather than
     erroring on an unconsumed plan entry. *)
  let outcome, canary_ok, fault =
    Fuzz.run_machine
      ~injection:(Fuzz.Region_rewrite max_int)
      ~strategy:Hfi_sfi.Strategy.Hfi Fuzz.detector_module
  in
  check_bool "outcome unchanged" true
    (outcome = Hfi_wasm.Wasm_interp.Value Fuzz.detector_pattern);
  check_bool "canary intact" true canary_ok;
  check_bool "no fault recorded" true (fault = None)

let test_plan_overlap_benign_adversarial () =
  (* A campaign runs a benign plan (TLB/cache perturbations) and an
     adversarial plan (planted instruction-stream accesses) over the
     same step range. The merged schedule must be deterministic, keep
     every injection from both plans, and — via the stable sort — keep
     benign entries ahead of adversarial ones that share a step. *)
  let mk () =
    let t = Fault_inject.create ~seed:21 in
    let benign =
      Fault_inject.plan t
        ~points:[ Fault_inject.Tlb_state; Fault_inject.Cache_state ]
        ~steps:40 ~rate:0.5
    in
    let adversarial =
      Fault_inject.plan (Fault_inject.split t) ~points:[ Fault_inject.Instr_stream ]
        ~steps:40 ~rate:0.5
    in
    (benign, adversarial)
  in
  let benign, adversarial = mk () in
  let merged =
    List.stable_sort
      (fun (a : Fault_inject.injection) b -> compare a.Fault_inject.step b.Fault_inject.step)
      (benign @ adversarial)
  in
  check_int "no injection lost in the merge"
    (List.length benign + List.length adversarial)
    (List.length merged);
  check_bool "steps overlap across the two plans" true
    (List.exists
       (fun (b : Fault_inject.injection) ->
         List.exists
           (fun (a : Fault_inject.injection) -> a.Fault_inject.step = b.Fault_inject.step)
           adversarial)
       benign);
  check_bool "benign precedes adversarial on shared steps" true
    (List.for_all
       (fun (b : Fault_inject.injection) ->
         List.for_all
           (fun (a : Fault_inject.injection) ->
             a.Fault_inject.step <> b.Fault_inject.step
             ||
             let pos x =
               let rec go i = function
                 | [] -> assert false
                 | y :: rest -> if y == x then i else go (i + 1) rest
               in
               go 0 merged
             in
             pos b < pos a)
           adversarial)
       benign);
  let benign', adversarial' = mk () in
  check_bool "replayable from the seed" true
    (benign = benign' && adversarial = adversarial')

(* --- Fuzz campaign ------------------------------------------------ *)

let test_fuzz_smoke_campaign () =
  (* Fixed seed, small but real campaign: differential agreement across
     the three backends, benign/adversarial injections, zero
     violations. *)
  let s = Fuzz.campaign ~seed:1234 ~iters:120 () in
  check_int "no violations" 0 (List.length s.Fuzz.violations);
  check_bool "most programs checked" true (s.Fuzz.checked > 100);
  check_bool "differential comparisons happened" true
    (s.Fuzz.value_agreements > 0 && s.Fuzz.trap_agreements > 0);
  check_bool "injections exercised" true
    (s.Fuzz.benign_injections + s.Fuzz.adversarial_injections > 0)

let test_fuzz_planted_bug_detected () =
  (* Negative control: corrupting the heap region register mid-run —
     out-of-region accesses completing without a trap — must be caught
     by the campaign's checker, both variants. *)
  check_bool "clean detector run is clean" false (Fuzz.plant_detected Fuzz.No_injection);
  check_bool "canary-directed corruption detected" true
    (Fuzz.plant_detected Fuzz.Region_corrupt_canary);
  check_bool "base-shift corruption detected" true
    (Fuzz.plant_detected (Fuzz.Region_corrupt_shift 0x2000));
  let s = Fuzz.campaign ~plant:true ~seed:99 ~iters:10 () in
  check_int "campaign plants both variants" 2 s.Fuzz.plants;
  check_int "campaign detects both" 2 s.Fuzz.plants_detected

let test_fuzz_benign_rewrite_invisible () =
  (* A benign same-value region rewrite mid-run must not change the
     detector's result or touch the canary. *)
  let outcome, canary_ok, _ =
    Fuzz.run_machine ~injection:(Fuzz.Region_rewrite 5) ~strategy:Hfi_sfi.Strategy.Hfi
      Fuzz.detector_module
  in
  check_bool "value unchanged" true
    (outcome = Hfi_wasm.Wasm_interp.Value Fuzz.detector_pattern);
  check_bool "canary intact" true canary_ok

(* --- Resilient runner --------------------------------------------- *)

let fake_entry ~id run = { Registry.id; description = "test entry"; run }

let ok_report id =
  { Report.id; title = "t"; paper_claim = "p"; table = "r\n"; verdict = "v"; data = [] }

let test_run_many_contains_crash () =
  (* One experiment raising must not take down the batch: the others
     still report, and the crasher comes back as a Crash fault naming
     it. Exercise both the sequential and the parallel pool paths. *)
  List.iter
    (fun jobs ->
      let entries =
        [
          fake_entry ~id:"good1" (fun ?quick:_ () -> ok_report "good1");
          fake_entry ~id:"boom" (fun ?quick:_ () -> failwith "deliberate test crash");
          fake_entry ~id:"good2" (fun ?quick:_ () -> ok_report "good2");
        ]
      in
      let outcomes = Registry.run_many ~jobs entries in
      check_int "three outcomes" 3 (List.length outcomes);
      match outcomes with
      | [ a; b; c ] ->
        check_bool "good1 ok" true (a.Registry.result = Ok (ok_report "good1"));
        check_bool "good2 ok" true (c.Registry.result = Ok (ok_report "good2"));
        (match b.Registry.result with
        | Error f ->
          check_bool "crash fault" true
            (match f.Fault.kind with Fault.Crash _ -> true | _ -> false);
          check_bool "names the entry" true (f.Fault.sandbox = Some "boom")
        | Ok _ -> Alcotest.fail "boom should have failed")
      | _ -> Alcotest.fail "outcome order lost")
    [ 1; 4 ]

let test_run_many_retries_transient () =
  (* Injected (transient) faults are retried within the budget; the
     attempt count is visible. Non-transient crashes are not retried. *)
  let flaky_runs = ref 0 in
  let flaky =
    fake_entry ~id:"flaky" (fun ?quick:_ () ->
        incr flaky_runs;
        if !flaky_runs < 3 then raise (Fault.Transient "injected bit flip")
        else ok_report "flaky")
  in
  let crash_runs = ref 0 in
  let crasher =
    fake_entry ~id:"crasher" (fun ?quick:_ () ->
        incr crash_runs;
        failwith "not transient")
  in
  (match Registry.run_many ~jobs:1 ~retries:2 [ flaky; crasher ] with
  | [ f; c ] ->
    check_bool "flaky recovered" true (f.Registry.result = Ok (ok_report "flaky"));
    check_int "flaky took three attempts" 3 f.Registry.attempts;
    check_bool "crasher still failed" true (Result.is_error c.Registry.result);
    check_int "crasher not retried" 1 !crash_runs
  | _ -> Alcotest.fail "expected two outcomes");
  (* Exhausted retry budget: the transient fault itself is reported. *)
  let hopeless =
    fake_entry ~id:"hopeless" (fun ?quick:_ () -> raise (Fault.Transient "always"))
  in
  match Registry.run_many ~jobs:1 ~retries:2 [ hopeless ] with
  | [ h ] ->
    check_int "budget consumed" 3 h.Registry.attempts;
    check_bool "transient fault reported" true
      (match h.Registry.result with Error f -> Fault.is_transient f | Ok _ -> false)
  | _ -> Alcotest.fail "expected one outcome"

let test_run_many_watchdog () =
  (* The watchdog is cooperative: an experiment whose (clocked) duration
     exceeds the budget has its result replaced by a Timeout fault. *)
  let t = ref 0.0 in
  let clock () =
    t := !t +. 10.0;
    !t
  in
  let slow = fake_entry ~id:"slow" (fun ?quick:_ () -> ok_report "slow") in
  match Registry.run_many ~jobs:1 ~clock ~timeout_s:5.0 [ slow ] with
  | [ o ] ->
    check_bool "timed out" true
      (match o.Registry.result with
      | Error { Fault.kind = Fault.Timeout { limit_s }; _ } -> limit_s = 5.0
      | _ -> false)
  | _ -> Alcotest.fail "expected one outcome"

let suite =
  [
    Alcotest.test_case "fault rendering is stable" `Quick test_fault_rendering;
    Alcotest.test_case "fault addr lifted from kind" `Quick test_fault_addr_lifted_from_kind;
    Alcotest.test_case "modeled vs injected vs crash" `Quick test_fault_classes;
    Alcotest.test_case "of_exn classifies Transient vs Crash" `Quick test_of_exn_classification;
    Alcotest.test_case "Msr.to_fault conversion" `Quick test_msr_to_fault;
    Alcotest.test_case "injection plan deterministic per seed" `Quick test_plan_deterministic;
    Alcotest.test_case "injection plan shape" `Quick test_plan_shape;
    Alcotest.test_case "zero-iteration plan is empty" `Quick test_plan_zero_steps;
    Alcotest.test_case "injection at cycle 0" `Quick test_plan_injection_at_cycle_zero;
    Alcotest.test_case "injection past program halt" `Quick test_plan_injection_past_halt;
    Alcotest.test_case "overlapping benign+adversarial plans" `Quick
      test_plan_overlap_benign_adversarial;
    Alcotest.test_case "fuzz smoke campaign (seed 1234)" `Quick test_fuzz_smoke_campaign;
    Alcotest.test_case "planted region corruption is detected" `Quick
      test_fuzz_planted_bug_detected;
    Alcotest.test_case "benign region rewrite is invisible" `Quick
      test_fuzz_benign_rewrite_invisible;
    Alcotest.test_case "run_many contains a crashing experiment" `Quick
      test_run_many_contains_crash;
    Alcotest.test_case "run_many retries transient faults" `Quick test_run_many_retries_transient;
    Alcotest.test_case "run_many cooperative watchdog" `Quick test_run_many_watchdog;
  ]
