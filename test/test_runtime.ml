open Hfi_isa
open Hfi_core
open Hfi_pipeline
open Hfi_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Native sandbox *)

let payload_exit_42 b =
  let open Instr in
  Program.Asm.emit b (Mov (Reg.RAX, Imm 42));
  Program.Asm.emit b Hfi_exit

let test_native_sandbox_runs_payload () =
  let t = Native_sandbox.build ~payload:payload_exit_42 () in
  let _, status = Native_sandbox.run t in
  check_bool "halted" true (status = Machine.Halted);
  check_int "payload result" 42 (Machine.get_reg (Native_sandbox.machine t) Reg.RAX);
  check_bool "hfi off at end" false (Hfi.enabled (Native_sandbox.hfi t))

let test_native_sandbox_interposes_syscalls () =
  let payload b =
    let open Instr in
    let e = Program.Asm.emit b in
    e (Mov (Reg.RAX, Imm (Syscall.number Syscall.Getpid)));
    e Syscall;
    e Hfi_exit
  in
  let t = Native_sandbox.build ~payload () in
  let _, status = Native_sandbox.run t in
  check_bool "halted" true (status = Machine.Halted);
  check_int "syscall executed on behalf" 4242 (Machine.get_reg (Native_sandbox.machine t) Reg.RAX);
  check_int "one trap" 1 (Hfi.stats (Native_sandbox.hfi t)).Hfi.syscall_traps

let test_native_sandbox_contains_wild_reads () =
  let payload b =
    let open Instr in
    Program.Asm.emit b (Load (W8, Reg.RAX, Instr.mem ~disp:0x7000_0000 ()));
    Program.Asm.emit b Hfi_exit
  in
  let t = Native_sandbox.build ~payload () in
  let _, status = Native_sandbox.run t in
  check_bool "violation" true
    (match status with Machine.Faulted (Msr.Bounds_violation _) -> true | _ -> false)

let test_native_sandbox_payload_continues_after_syscall () =
  (* open/read/close then compute: hfi_reenter must resume correctly. *)
  let payload b =
    let open Instr in
    let e = Program.Asm.emit b in
    e (Mov (Reg.RAX, Imm (Syscall.number Syscall.Open)));
    e (Mov (Reg.RDI, Imm 1));
    e Syscall;
    e (Mov (Reg.R8, Reg Reg.RAX));
    e (Mov (Reg.RAX, Imm (Syscall.number Syscall.Close)));
    e (Mov (Reg.RDI, Reg Reg.R8));
    e Syscall;
    e (Mov (Reg.RAX, Imm 1000));
    e (Alu (Add, Reg.RAX, Reg Reg.R8));
    e Hfi_exit
  in
  let t = Native_sandbox.build ~payload () in
  Hfi_memory.Kernel.add_file (Native_sandbox.kernel t) ~id:1 ~content:"x";
  let _, status = Native_sandbox.run t in
  check_bool "halted" true (status = Machine.Halted);
  (* fd is 3 → 1003 *)
  check_int "resumed with state intact" 1003 (Machine.get_reg (Native_sandbox.machine t) Reg.RAX)

let test_syscall_benchmark_ordering () =
  let n = 300 in
  let un = Native_sandbox.syscall_benchmark ~mode:Native_sandbox.Unprotected ~iterations:n in
  let hfi = Native_sandbox.syscall_benchmark ~mode:Native_sandbox.Hfi_interposition ~iterations:n in
  let sec = Native_sandbox.syscall_benchmark ~mode:Native_sandbox.Seccomp_filter ~iterations:n in
  check_bool "unprotected cheapest" true (un < hfi);
  check_bool "seccomp above hfi" true (hfi < sec);
  check_bool "hfi within 5% of unprotected" true (hfi /. un < 1.05)

(* FaaS model *)

let test_faas_hfi_near_unsafe () =
  let w = Hfi_workloads.Faas_workloads.templated_html in
  let unsafe = Faas.serve ~requests:600 w Faas.Unsafe in
  let hfi = Faas.serve ~requests:600 w Faas.Hfi_protection in
  let swivel = Faas.serve ~requests:600 w Faas.Swivel_protection in
  check_bool "hfi avg within 2%" true (hfi.Faas.avg_ms /. unsafe.Faas.avg_ms < 1.02);
  check_bool "swivel noticeably slower" true (swivel.Faas.avg_ms /. unsafe.Faas.avg_ms > 1.2);
  check_bool "swivel throughput drops" true (swivel.Faas.throughput_rps < unsafe.Faas.throughput_rps);
  check_bool "swivel binary bloats" true (swivel.Faas.binary_bytes > unsafe.Faas.binary_bytes);
  check_int "hfi binary unchanged" unsafe.Faas.binary_bytes hfi.Faas.binary_bytes

let test_faas_deterministic () =
  let w = Hfi_workloads.Faas_workloads.xml_to_json in
  let a = Faas.serve ~requests:300 ~seed:5 w Faas.Unsafe in
  let b = Faas.serve ~requests:300 ~seed:5 w Faas.Unsafe in
  check_bool "same seed same tail" true (a.Faas.tail_ms = b.Faas.tail_ms)

let test_faas_table1_complete () =
  let t = Faas.run_table1 ~requests:200 () in
  check_int "4 workloads" 4 (List.length t);
  List.iter (fun (_, rows) -> check_int "3 configurations" 3 (List.length rows)) t

(* NGINX model *)

let test_nginx_ordering () =
  List.iter
    (fun s ->
      let native = Nginx.throughput Nginx.Native ~file_bytes:s in
      let hfi = Nginx.throughput Nginx.Hfi_native ~file_bytes:s in
      let mpk = Nginx.throughput Nginx.Mpk_erim ~file_bytes:s in
      check_bool "native fastest" true (native > hfi);
      check_bool "mpk between" true (mpk > hfi && mpk < native))
    Nginx.file_sizes

let test_nginx_overhead_band () =
  let over m s = (1.0 -. (Nginx.throughput m ~file_bytes:s /. Nginx.throughput Nginx.Native ~file_bytes:s)) *. 100.0 in
  List.iter
    (fun s ->
      let h = over Nginx.Hfi_native s in
      check_bool "hfi 2-7%" true (h > 2.0 && h < 7.0))
    Nginx.file_sizes

let test_nginx_transitions_grow_with_size () =
  check_bool "more records, more transitions" true
    (Nginx.transitions_per_request ~file_bytes:(128 * 1024)
    > Nginx.transitions_per_request ~file_bytes:0)

(* Scheduler: processes multiplex one core's HFI registers (SS3.3.3). *)

let test_scheduler_multiplexes_hfi_processes () =
  let sched = Scheduler.create () in
  (* Two HFI-sandboxed Wasm instances plus one plain process, timesliced
     with deliberately clobbered HFI registers between slices: only a
     correct xsave/xrstor keeps the sandboxes alive. *)
  let w1 = Hfi_workloads.Sightglass.find "sieve" in
  let w2 = Hfi_workloads.Sightglass.find "fib2" in
  Scheduler.spawn_instance sched ~name:"sieve"
    (Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi w1);
  Scheduler.spawn_instance sched ~name:"fib"
    (Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi w2);
  Scheduler.spawn_instance sched ~name:"guard"
    (Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Guard_pages w2);
  check_bool "run completed" true (Scheduler.run ~quantum:700 sched = Ok ());
  check_bool "sieve finished" true (Scheduler.status sched ~name:"sieve" = Scheduler.Finished);
  check_int "sieve correct across switches" 1028 (Scheduler.result sched ~name:"sieve");
  check_int "fib correct" 2584 (Scheduler.result sched ~name:"fib");
  check_int "guard-pages process too" 2584 (Scheduler.result sched ~name:"guard");
  check_bool "many context switches happened" true (Scheduler.context_switches sched > 10);
  check_bool "switch time accounted" true (Scheduler.switch_cycles sched > 0.0)

let test_scheduler_kills_faulting_process_only () =
  let sched = Scheduler.create () in
  let bad =
    Hfi_wasm.Instance.workload ~name:"bad" (fun cg ->
        Hfi_wasm.Codegen.emit cg (Instr.Mov (Reg.RCX, Imm (512 * 1024 * 1024)));
        Hfi_wasm.Codegen.store_heap cg Instr.W8 ~addr:Reg.RCX ~offset:0 ~src:(Instr.Imm 1))
  in
  Scheduler.spawn_instance sched ~name:"bad"
    (Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi bad);
  Scheduler.spawn_instance sched ~name:"good"
    (Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi
       (Hfi_workloads.Sightglass.find "nestedloop"));
  check_bool "run completed" true (Scheduler.run ~quantum:200 sched = Ok ());
  check_bool "bad killed" true
    (match Scheduler.status sched ~name:"bad" with Scheduler.Killed _ -> true | _ -> false);
  check_int "good unaffected" 64000 (Scheduler.result sched ~name:"good")

(* Transitions (SS3.3.1). *)

let test_transition_costs () =
  let spring = Transitions.measure ~iterations:500 Transitions.Springboard in
  let zero = Transitions.measure ~iterations:500 Transitions.Zero_cost in
  check_bool "springboard costs more" true (spring > zero +. 3.0);
  (* both are on the order of a serialized enter/exit pair, i.e. ~100
     cycles, not a process switch (~4500) *)
  check_bool "zero-cost near pure enter/exit" true (zero < 300.0);
  check_bool "springboard still far below IPC" true (spring < 1000.0)

(* In-place object sharing through a small explicit region (SS3.2). *)

let host_buffer_addr = 0x5000_0040 (* deliberately unaligned-ish: byte granular *)

let test_shared_object_in_place () =
  let payload b =
    let open Instr in
    let e = Program.Asm.emit b in
    (* sum the 10-byte shared object via hmov1 and increment its first byte *)
    e (Mov (Reg.RAX, Imm 0));
    e (Mov (Reg.RCX, Imm 0));
    Program.Asm.label b "payload_sum";
    e (Hload (1, W1, Reg.R8, Instr.mem ~index:Reg.RCX ()));
    e (Alu (Add, Reg.RAX, Reg Reg.R8));
    e (Alu (Add, Reg.RCX, Imm 1));
    e (Cmp (Reg.RCX, Imm 10));
    Program.Asm.jcc b Lt "payload_sum";
    e (Hload (1, W1, Reg.R9, Instr.mem ()));
    e (Alu (Add, Reg.R9, Imm 1));
    e (Hstore (1, W1, Instr.mem (), Reg Reg.R9));
    e Hfi_exit
  in
  let t = Native_sandbox.build ~shared_object:(host_buffer_addr, 10) ~payload () in
  let mem = Hfi_memory.Kernel.address_space (Native_sandbox.kernel t) in
  Hfi_memory.Addr_space.mmap mem ~addr:0x5000_0000 ~len:4096 Hfi_memory.Perm.rw;
  for k = 0 to 9 do
    Hfi_memory.Addr_space.poke mem ~addr:(host_buffer_addr + k) ~bytes:1 (k + 1)
  done;
  let _, status = Native_sandbox.run t in
  check_bool "halted" true (status = Machine.Halted);
  check_int "summed the object" 55 (Machine.get_reg (Native_sandbox.machine t) Reg.RAX);
  check_int "wrote back in place" 2 (Hfi_memory.Addr_space.peek mem ~addr:host_buffer_addr ~bytes:1)

let test_shared_object_is_exactly_bounded () =
  (* One byte past the 10-byte object traps, even though the host page
     continues — the byte-granular sharing claim of SS3.2. *)
  let payload b =
    let open Instr in
    Program.Asm.emit b (Hload (1, W1, Reg.RAX, Instr.mem ~disp:10 ()));
    Program.Asm.emit b Hfi_exit
  in
  let t = Native_sandbox.build ~shared_object:(host_buffer_addr, 10) ~payload () in
  let mem = Hfi_memory.Kernel.address_space (Native_sandbox.kernel t) in
  Hfi_memory.Addr_space.mmap mem ~addr:0x5000_0000 ~len:4096 Hfi_memory.Perm.rw;
  let _, status = Native_sandbox.run t in
  check_bool "one byte past the object traps" true
    (match status with Machine.Faulted (Msr.Bounds_violation v) -> v.Msr.cause = Msr.Out_of_bounds | _ -> false)

let test_shared_object_not_reachable_by_plain_loads () =
  (* The surrounding host page is not in any implicit region: ordinary
     loads at the object's own address still trap. *)
  let payload b =
    let open Instr in
    Program.Asm.emit b (Load (W1, Reg.RAX, Instr.mem ~disp:host_buffer_addr ()));
    Program.Asm.emit b Hfi_exit
  in
  let t = Native_sandbox.build ~shared_object:(host_buffer_addr, 10) ~payload () in
  let mem = Hfi_memory.Kernel.address_space (Native_sandbox.kernel t) in
  Hfi_memory.Addr_space.mmap mem ~addr:0x5000_0000 ~len:4096 Hfi_memory.Perm.rw;
  let _, status = Native_sandbox.run t in
  check_bool "implicit path denies the same address" true
    (match status with Machine.Faulted (Msr.Bounds_violation _) -> true | _ -> false)

let suite =
  [
    Alcotest.test_case "native sandbox runs payload" `Quick test_native_sandbox_runs_payload;
    Alcotest.test_case "native sandbox interposes syscalls" `Quick test_native_sandbox_interposes_syscalls;
    Alcotest.test_case "native sandbox contains wild reads" `Quick test_native_sandbox_contains_wild_reads;
    Alcotest.test_case "hfi_reenter resumes payload" `Quick test_native_sandbox_payload_continues_after_syscall;
    Alcotest.test_case "syscall benchmark ordering" `Quick test_syscall_benchmark_ordering;
    Alcotest.test_case "faas: hfi near unsafe, swivel slower" `Quick test_faas_hfi_near_unsafe;
    Alcotest.test_case "faas deterministic" `Quick test_faas_deterministic;
    Alcotest.test_case "faas table1 complete" `Quick test_faas_table1_complete;
    Alcotest.test_case "nginx mechanism ordering" `Quick test_nginx_ordering;
    Alcotest.test_case "nginx overhead band" `Quick test_nginx_overhead_band;
    Alcotest.test_case "nginx transitions scale" `Quick test_nginx_transitions_grow_with_size;
    Alcotest.test_case "scheduler multiplexes HFI" `Quick test_scheduler_multiplexes_hfi_processes;
    Alcotest.test_case "scheduler isolates faults" `Quick test_scheduler_kills_faulting_process_only;
    Alcotest.test_case "transition costs" `Quick test_transition_costs;
    Alcotest.test_case "shared object in place" `Quick test_shared_object_in_place;
    Alcotest.test_case "shared object exactly bounded" `Quick test_shared_object_is_exactly_bounded;
    Alcotest.test_case "shared object not implicitly reachable" `Quick test_shared_object_not_reachable_by_plain_loads;
  ]


