open Hfi_isa

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_reg_index_roundtrip () =
  Array.iter (fun r -> Alcotest.(check bool) "roundtrip" true (Reg.of_index (Reg.index r) = r)) Reg.all;
  check_int "count" 16 Reg.count

let test_reg_names_unique () =
  let names = Array.to_list (Array.map Reg.to_string Reg.all) in
  check_int "unique names" 16 (List.length (List.sort_uniq compare names))

let test_eval_cond_signed_unsigned () =
  check_bool "lt signed" true (Instr.eval_cond Instr.Lt (-1) 1);
  check_bool "ult treats -1 as large" false (Instr.eval_cond Instr.Ult (-1) 1);
  check_bool "ugt" true (Instr.eval_cond Instr.Ugt (-1) 1);
  check_bool "eq" true (Instr.eval_cond Instr.Eq 5 5);
  check_bool "uge equal" true (Instr.eval_cond Instr.Uge 5 5);
  check_bool "ule" true (Instr.eval_cond Instr.Ule 3 5)

let test_negate_cond_involutive () =
  List.iter
    (fun c -> check_bool "double negation" true (Instr.negate_cond (Instr.negate_cond c) = c))
    [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Le; Instr.Gt; Instr.Ge; Instr.Ult; Instr.Ule; Instr.Ugt; Instr.Uge ]

let test_negate_cond_inverts () =
  let conds =
    [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Le; Instr.Gt; Instr.Ge; Instr.Ult; Instr.Ule; Instr.Ugt; Instr.Uge ]
  in
  List.iter
    (fun c ->
      List.iter
        (fun (a, b) ->
          check_bool "negation flips truth" (Instr.eval_cond c a b)
            (not (Instr.eval_cond (Instr.negate_cond c) a b)))
        [ (0, 0); (1, 2); (2, 1); (-3, 4); (4, -3) ])
    conds

let test_hmov_encoding_longer () =
  let m = Instr.mem ~base:Reg.RAX ~disp:64 () in
  let plain = Instr.length (Instr.Load (Instr.W8, Reg.RBX, m)) in
  let hmov = Instr.length (Instr.Hload (0, Instr.W8, Reg.RBX, m)) in
  check_int "hmov prefix is 2 bytes" (plain + 2) hmov

let test_length_disp_encoding () =
  let small = Instr.mem ~base:Reg.RAX ~disp:4 () in
  let large = Instr.mem ~base:Reg.RAX ~disp:4096 () in
  let none = Instr.mem ~base:Reg.RAX () in
  check_bool "no disp shortest" true
    (Instr.length (Instr.Load (Instr.W8, Reg.RBX, none))
    < Instr.length (Instr.Load (Instr.W8, Reg.RBX, small)));
  check_bool "large disp longest" true
    (Instr.length (Instr.Load (Instr.W8, Reg.RBX, small))
    < Instr.length (Instr.Load (Instr.W8, Reg.RBX, large)))

let test_mem_scale_validation () =
  Alcotest.check_raises "bad scale" (Invalid_argument "Instr.mem: scale must be 1, 2, 4 or 8")
    (fun () -> ignore (Instr.mem ~scale:3 ()))

let test_hmov_reads_drop_base () =
  let m = Instr.mem ~base:Reg.RAX ~index:Reg.RBX () in
  let plain_reads = Instr.reads (Instr.Load (Instr.W8, Reg.RCX, m)) in
  let hmov_reads = Instr.reads (Instr.Hload (0, Instr.W8, Reg.RCX, m)) in
  check_bool "plain reads base" true (List.mem Reg.RAX plain_reads);
  check_bool "hmov ignores base (reduced register pressure)" false (List.mem Reg.RAX hmov_reads);
  check_bool "hmov still reads index" true (List.mem Reg.RBX hmov_reads)

let test_classification () =
  check_bool "load reads mem" true (Instr.is_mem_read (Instr.Load (Instr.W8, Reg.RAX, Instr.mem_reg Reg.RBX)));
  check_bool "store writes mem" true (Instr.is_mem_write (Instr.Store (Instr.W8, Instr.mem_reg Reg.RBX, Instr.Imm 0)));
  check_bool "jcc is branch" true (Instr.is_branch (Instr.Jcc (Instr.Eq, 0)));
  check_bool "cpuid serializes" true (Instr.is_serializing Instr.Cpuid);
  check_bool "nop does not serialize" false (Instr.is_serializing Instr.Nop)

let test_program_offsets () =
  let p =
    Program.of_instrs
      [| Instr.Nop; Instr.Mov (Reg.RAX, Instr.Imm 5); Instr.Halt |]
  in
  check_int "first at 0" 0 (Program.byte_offset p 0);
  check_int "second after nop" (Instr.length Instr.Nop) (Program.byte_offset p 1);
  check_int "size" (Instr.length Instr.Nop + Instr.length (Instr.Mov (Reg.RAX, Instr.Imm 5)) + 1)
    (Program.byte_size p)

let test_index_of_byte () =
  let p = Program.of_instrs [| Instr.Nop; Instr.Nop; Instr.Halt |] in
  Alcotest.(check (option int)) "exact offset" (Some 1) (Program.index_of_byte p 1);
  Alcotest.(check (option int)) "mid-instruction" None (Program.index_of_byte p 100)

let test_asm_labels () =
  let b = Program.Asm.create () in
  Program.Asm.emit b (Instr.Mov (Reg.RAX, Instr.Imm 0));
  Program.Asm.label b "loop";
  Program.Asm.emit b (Instr.Alu (Instr.Add, Reg.RAX, Instr.Imm 1));
  Program.Asm.emit b (Instr.Cmp (Reg.RAX, Instr.Imm 10));
  Program.Asm.jcc b Instr.Lt "loop";
  Program.Asm.emit b Instr.Halt;
  let p = Program.Asm.assemble b in
  check_int "5 instrs" 5 (Program.length p);
  (match Program.get p 3 with
  | Instr.Jcc (Instr.Lt, 1) -> ()
  | i -> Alcotest.failf "wrong resolution: %s" (Instr.to_string i))

let test_asm_forward_reference () =
  let b = Program.Asm.create () in
  Program.Asm.jmp b "end";
  Program.Asm.emit b Instr.Nop;
  Program.Asm.label b "end";
  Program.Asm.emit b Instr.Halt;
  let p = Program.Asm.assemble b in
  match Program.get p 0 with
  | Instr.Jmp 2 -> ()
  | i -> Alcotest.failf "forward ref broken: %s" (Instr.to_string i)

let test_asm_undefined_label () =
  let b = Program.Asm.create () in
  Program.Asm.jmp b "nowhere";
  Alcotest.check_raises "undefined" (Invalid_argument "Asm.assemble: undefined label \"nowhere\"")
    (fun () -> ignore (Program.Asm.assemble b))

let test_asm_duplicate_label () =
  let b = Program.Asm.create () in
  Program.Asm.label b "x";
  Alcotest.check_raises "duplicate" (Invalid_argument "Asm.label: duplicate label \"x\"")
    (fun () -> Program.Asm.label b "x")

let test_asm_fresh_labels_unique () =
  let b = Program.Asm.create () in
  let l1 = Program.Asm.fresh_label b "l" in
  let l2 = Program.Asm.fresh_label b "l" in
  check_bool "unique" true (l1 <> l2)

let test_hfi_iface_slots () =
  check_int "10 regions" 10 Hfi_iface.region_count;
  Alcotest.(check bool) "slot 0 is code" true (Hfi_iface.slot_kind 0 = `Code);
  Alcotest.(check bool) "slot 3 is implicit data" true (Hfi_iface.slot_kind 3 = `Implicit_data);
  Alcotest.(check bool) "slot 7 is explicit" true (Hfi_iface.slot_kind 7 = `Explicit_data);
  check_int "hmov region of slot 6" 0 (Hfi_iface.explicit_index 6);
  check_int "slot of hmov region 3" 9 (Hfi_iface.slot_of_explicit_index 3)

let test_syscall_numbers () =
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        "roundtrip" (Some (Syscall.to_string s))
        (Option.map Syscall.to_string (Syscall.of_number (Syscall.number s))))
    Syscall.all;
  Alcotest.(check bool) "unknown" true (Syscall.of_number 9999 = None)

let suite =
  [
    Alcotest.test_case "reg index roundtrip" `Quick test_reg_index_roundtrip;
    Alcotest.test_case "reg names unique" `Quick test_reg_names_unique;
    Alcotest.test_case "eval_cond signed/unsigned" `Quick test_eval_cond_signed_unsigned;
    Alcotest.test_case "negate_cond involutive" `Quick test_negate_cond_involutive;
    Alcotest.test_case "negate_cond inverts truth" `Quick test_negate_cond_inverts;
    Alcotest.test_case "hmov longer encoding" `Quick test_hmov_encoding_longer;
    Alcotest.test_case "disp encoding lengths" `Quick test_length_disp_encoding;
    Alcotest.test_case "mem scale validation" `Quick test_mem_scale_validation;
    Alcotest.test_case "hmov drops base dependency" `Quick test_hmov_reads_drop_base;
    Alcotest.test_case "instr classification" `Quick test_classification;
    Alcotest.test_case "program byte offsets" `Quick test_program_offsets;
    Alcotest.test_case "index_of_byte" `Quick test_index_of_byte;
    Alcotest.test_case "asm labels" `Quick test_asm_labels;
    Alcotest.test_case "asm forward reference" `Quick test_asm_forward_reference;
    Alcotest.test_case "asm undefined label" `Quick test_asm_undefined_label;
    Alcotest.test_case "asm duplicate label" `Quick test_asm_duplicate_label;
    Alcotest.test_case "asm fresh labels" `Quick test_asm_fresh_labels_unique;
    Alcotest.test_case "hfi_iface slots" `Quick test_hfi_iface_slots;
    Alcotest.test_case "syscall numbers" `Quick test_syscall_numbers;
  ]
