(* The µop decode layer (lib/pipeline/uop.ml): pre-decoded metadata must
   agree with the Instr functions it mirrors, and µop/basic-block
   dispatch must be observationally identical to the reference AST
   interpreter — bit-identical modeled cycles, registers, and status on
   both engines (this is what makes HFI_DECODE_CACHE a pure
   performance switch). *)

open Hfi_isa
open Hfi_pipeline
module Instance = Hfi_wasm.Instance
module Strategy = Hfi_sfi.Strategy
module Sightglass = Hfi_workloads.Sightglass

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let exact_float = Alcotest.(check (float 0.0))

let with_dispatch flag f =
  let saved = !Machine.decode_dispatch in
  Machine.decode_dispatch := flag;
  Fun.protect ~finally:(fun () -> Machine.decode_dispatch := saved) f

(* Every Sightglass kernel under every strategy: a varied mix of loads,
   stores, hmovs, bounds checks, transitions, calls, and branches. *)
let sample_instances () =
  List.concat_map
    (fun (name, w) ->
      List.map
        (fun s ->
          (Printf.sprintf "%s/%s" name (Strategy.to_string s),
           Instance.instantiate ~strategy:s w))
        Strategy.all)
    Sightglass.all

let test_decode_metadata () =
  List.iter
    (fun (name, inst) ->
      let m = Instance.machine inst in
      let prog = Instance.program inst in
      let code_base = Machine.code_base m in
      let uops = Uop.decode_fresh prog ~code_base in
      let n = Array.length uops in
      check_int (name ^ ": count") (Program.length prog) n;
      let addr = ref code_base in
      Array.iteri
        (fun i (u : Uop.t) ->
          let ins = u.Uop.instr in
          check_int (name ^ ": index") i u.Uop.index;
          check_int (name ^ ": length") (Instr.length ins) u.Uop.length;
          check_int (name ^ ": fetch_addr") !addr u.Uop.fetch_addr;
          check_int (name ^ ": addr_of_index") (Machine.addr_of_index m i) u.Uop.fetch_addr;
          addr := !addr + u.Uop.length;
          let idxs l = List.map Reg.index l in
          Alcotest.(check (list int))
            (name ^ ": reads") (idxs (Instr.reads ins)) (Array.to_list u.Uop.reads);
          Alcotest.(check (list int))
            (name ^ ": writes") (idxs (Instr.writes ins)) (Array.to_list u.Uop.writes);
          check_bool (name ^ ": block_last in range") true
            (u.Uop.block_last >= i && u.Uop.block_last < n);
          (* A branch can leave the block, so it must end one. *)
          if Instr.is_branch ins then check_int (name ^ ": branch ends block") i u.Uop.block_last;
          (* Instructions inside a block share its last index. *)
          if i < u.Uop.block_last then
            check_int (name ^ ": shared block_last") u.Uop.block_last
              uops.(i + 1).Uop.block_last)
        uops)
    (sample_instances ())

let test_decode_memoized () =
  let inst = Instance.instantiate ~strategy:Strategy.Hfi (Sightglass.find "gimli") in
  let prog = Instance.program inst in
  let code_base = Machine.code_base (Instance.machine inst) in
  let a = Uop.decode prog ~code_base in
  let b = Uop.decode prog ~code_base in
  check_bool "same physical array" true (a == b)

(* The read-only control-flow view (flow_of/static_successors/
   is_block_head) must agree with the reference AST interpreter: every
   transition between committed instructions is one the static view
   predicts — a static successor where the flow is static, a block head
   where it is indirect. Runs on every example program under every
   strategy. *)
let test_static_successors_agree () =
  List.iter
    (fun (name, inst) ->
      let m = Instance.machine inst in
      let prog = Instance.program inst in
      let uops = Uop.decode prog ~code_base:(Machine.code_base m) in
      let prev = ref None in
      let observe (info : Machine.exec_info) =
        let j = info.Machine.index in
        (match !prev with
        | Some (p : Machine.exec_info) when p.Machine.signal = None ->
          let i = p.Machine.index in
          (match Uop.flow_of uops.(i) with
          | Uop.Indirect_jump | Uop.Indirect_call | Uop.Return ->
            check_bool
              (Printf.sprintf "%s: #%d indirect/ret lands on a block head" name i)
              true (Uop.is_block_head uops j)
          | Uop.Stop -> Alcotest.failf "%s: executed past halt at #%d" name i
          | _ ->
            check_bool
              (Printf.sprintf "%s: #%d -> #%d statically predicted" name i j)
              true
              (List.mem j (Uop.static_successors uops i)))
        | _ -> ());
        (* a delivered signal redirects control to the handler: the next
           transition is the kernel's, not the program's *)
        prev := Some info;
        let h = Uop.block_head uops j in
        check_bool
          (Printf.sprintf "%s: #%d head #%d is a head at or before it" name j h)
          true
          (h <= j && Uop.is_block_head uops h && uops.(h).Uop.block_last >= j)
      in
      match Machine.run ~fuel:30_000_000 m observe with
      | Machine.Running -> Alcotest.failf "%s: out of fuel" name
      | Machine.Halted | Machine.Faulted _ -> ())
    (sample_instances ())

(* Fast engine: cycles, rax, and status identical in both dispatch modes. *)
let test_fast_engine_equivalence () =
  List.iter
    (fun (name, w) ->
      List.iter
        (fun s ->
          let run () =
            let inst = Instance.instantiate ~strategy:s w in
            let cycles, status = Instance.run_fast inst in
            (cycles, status, Instance.result_rax inst)
          in
          let c_on, st_on, rax_on = with_dispatch true run in
          let c_off, st_off, rax_off = with_dispatch false run in
          let id = Printf.sprintf "%s/%s" name (Strategy.to_string s) in
          check_bool (id ^ ": status") true (st_on = st_off);
          check_int (id ^ ": rax") rax_off rax_on;
          exact_float (id ^ ": fast cycles") c_off c_on)
        Strategy.all)
    Sightglass.all

(* Cycle engine: every counter of the result record must match exactly,
   not just total cycles — the dynamic hooks (caches, TLB, predictor,
   wrong-path speculation) fire identically per committed instruction. *)
let test_cycle_engine_equivalence () =
  List.iter
    (fun (name, w) ->
      List.iter
        (fun s ->
          let run () =
            let inst = Instance.instantiate ~strategy:s w in
            (Instance.run_cycle inst, Instance.result_rax inst)
          in
          let r_on, rax_on = with_dispatch true run in
          let r_off, rax_off = with_dispatch false run in
          let id = Printf.sprintf "%s/%s" name (Strategy.to_string s) in
          exact_float (id ^ ": cycles") r_off.Cycle_engine.cycles r_on.Cycle_engine.cycles;
          check_int (id ^ ": instrs") r_off.Cycle_engine.instrs r_on.Cycle_engine.instrs;
          check_int (id ^ ": icache") r_off.Cycle_engine.icache_misses r_on.Cycle_engine.icache_misses;
          check_int (id ^ ": dcache") r_off.Cycle_engine.dcache_misses r_on.Cycle_engine.dcache_misses;
          check_int (id ^ ": dtlb") r_off.Cycle_engine.dtlb_misses r_on.Cycle_engine.dtlb_misses;
          check_int (id ^ ": cond-mispredicts") r_off.Cycle_engine.cond_mispredicts
            r_on.Cycle_engine.cond_mispredicts;
          check_int (id ^ ": indirect-mispredicts") r_off.Cycle_engine.indirect_mispredicts
            r_on.Cycle_engine.indirect_mispredicts;
          check_int (id ^ ": drains") r_off.Cycle_engine.drains r_on.Cycle_engine.drains;
          check_int (id ^ ": transient") r_off.Cycle_engine.transient_instrs
            r_on.Cycle_engine.transient_instrs;
          check_bool (id ^ ": status") true
            (r_on.Cycle_engine.status = r_off.Cycle_engine.status);
          check_int (id ^ ": rax") rax_off rax_on)
        Strategy.all)
    Sightglass.all

(* Fig. 3 synthetic SPEC profiles on the cycle engine: the exact floats
   that feed the paper's headline table must not move with the dispatch
   mode. *)
let test_fig3_equivalence () =
  let profiles = List.filteri (fun k _ -> k < 2) Hfi_workloads.Spec.profiles in
  List.iter
    (fun p ->
      List.iter
        (fun s ->
          let run () = Hfi_experiments.Fig3_spec.run_one s p ~iters_divisor:16 in
          let on = with_dispatch true run in
          let off = with_dispatch false run in
          exact_float
            (Printf.sprintf "%s/%s" p.Hfi_workloads.Spec.name (Strategy.to_string s))
            off on)
        Strategy.all)
    profiles

(* Seeded differential fuzzing: generated Wasm modules, compiled under a
   rotating strategy, must produce the same outcome and the same modeled
   cycles in both dispatch modes. *)
let test_fuzz_differential () =
  let outcome_t = Alcotest.testable Hfi_wasm.Wasm_interp.pp_outcome ( = ) in
  let rng = Hfi_util.Prng.create ~seed:0xC0FFEE in
  let strategies = Array.of_list Strategy.all in
  for k = 1 to 50 do
    let m = Hfi_experiments.Fuzz.generate rng in
    let strategy = strategies.(k mod Array.length strategies) in
    let run () = Hfi_wasm.Wasm_compile.run ~strategy m in
    let o_on, c_on = with_dispatch true run in
    let o_off, c_off = with_dispatch false run in
    let id = Printf.sprintf "fuzz #%d (%s)" k (Strategy.to_string strategy) in
    Alcotest.check outcome_t (id ^ ": outcome") o_off o_on;
    exact_float (id ^ ": cycles") c_off c_on
  done

let suite =
  [
    Alcotest.test_case "decode metadata matches Instr" `Quick test_decode_metadata;
    Alcotest.test_case "decode is memoized per program" `Quick test_decode_memoized;
    Alcotest.test_case "static successors agree with execution" `Quick
      test_static_successors_agree;
    Alcotest.test_case "fast engine: dispatch on/off identical" `Quick test_fast_engine_equivalence;
    Alcotest.test_case "cycle engine: dispatch on/off identical" `Quick test_cycle_engine_equivalence;
    Alcotest.test_case "fig3 cycles: dispatch on/off identical" `Slow test_fig3_equivalence;
    Alcotest.test_case "fuzz differential: dispatch on/off" `Slow test_fuzz_differential;
  ]
