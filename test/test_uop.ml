(* The µop decode layer (lib/pipeline/uop.ml): pre-decoded metadata must
   agree with the Instr functions it mirrors, and every execution tier —
   µop dispatch and block-compiled threaded dispatch — must be
   observationally identical to the reference AST interpreter:
   bit-identical modeled cycles, registers, and status on both engines
   (this is what makes HFI_DECODE_CACHE / HFI_BLOCK_COMPILE pure
   performance switches). *)

open Hfi_isa
open Hfi_pipeline
module Instance = Hfi_wasm.Instance
module Strategy = Hfi_sfi.Strategy
module Sightglass = Hfi_workloads.Sightglass

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let exact_float = Alcotest.(check (float 0.0))

type tier = Ast | Uop_dispatch | Block

let tier_name = function Ast -> "ast" | Uop_dispatch -> "uop" | Block -> "block"
let tiers = [ Ast; Uop_dispatch; Block ]

let with_tier tier f =
  let saved_d = !Machine.decode_dispatch in
  let saved_b = !Machine.block_compile in
  (match tier with
  | Ast -> Machine.decode_dispatch := false
  | Uop_dispatch ->
    Machine.decode_dispatch := true;
    Machine.block_compile := false
  | Block ->
    Machine.decode_dispatch := true;
    Machine.block_compile := true);
  Fun.protect
    ~finally:(fun () ->
      Machine.decode_dispatch := saved_d;
      Machine.block_compile := saved_b)
    f

let test_dispatch_tier_names () =
  List.iter
    (fun t ->
      Alcotest.(check string)
        "dispatch_tier reflects the flags" (tier_name t)
        (with_tier t Machine.dispatch_tier))
    tiers

(* Every Sightglass kernel under every strategy: a varied mix of loads,
   stores, hmovs, bounds checks, transitions, calls, and branches. *)
let sample_instances () =
  List.concat_map
    (fun (name, w) ->
      List.map
        (fun s ->
          (Printf.sprintf "%s/%s" name (Strategy.to_string s),
           Instance.instantiate ~strategy:s w))
        Strategy.all)
    Sightglass.all

let test_decode_metadata () =
  List.iter
    (fun (name, inst) ->
      let m = Instance.machine inst in
      let prog = Instance.program inst in
      let code_base = Machine.code_base m in
      let uops = Uop.decode_fresh prog ~code_base in
      let n = Array.length uops in
      check_int (name ^ ": count") (Program.length prog) n;
      let addr = ref code_base in
      Array.iteri
        (fun i (u : Uop.t) ->
          let ins = u.Uop.instr in
          check_int (name ^ ": index") i u.Uop.index;
          check_int (name ^ ": length") (Instr.length ins) u.Uop.length;
          check_int (name ^ ": fetch_addr") !addr u.Uop.fetch_addr;
          check_int (name ^ ": addr_of_index") (Machine.addr_of_index m i) u.Uop.fetch_addr;
          addr := !addr + u.Uop.length;
          let idxs l = List.map Reg.index l in
          Alcotest.(check (list int))
            (name ^ ": reads") (idxs (Instr.reads ins)) (Array.to_list u.Uop.reads);
          Alcotest.(check (list int))
            (name ^ ": writes") (idxs (Instr.writes ins)) (Array.to_list u.Uop.writes);
          check_bool (name ^ ": block_last in range") true
            (u.Uop.block_last >= i && u.Uop.block_last < n);
          (* A branch can leave the block, so it must end one. *)
          if Instr.is_branch ins then check_int (name ^ ": branch ends block") i u.Uop.block_last;
          (* Instructions inside a block share its last index. *)
          if i < u.Uop.block_last then
            check_int (name ^ ": shared block_last") u.Uop.block_last
              uops.(i + 1).Uop.block_last)
        uops)
    (sample_instances ())

let test_decode_memoized () =
  let inst = Instance.instantiate ~strategy:Strategy.Hfi (Sightglass.find "gimli") in
  let prog = Instance.program inst in
  let code_base = Machine.code_base (Instance.machine inst) in
  let a = Uop.decode prog ~code_base in
  let b = Uop.decode prog ~code_base in
  check_bool "same physical array" true (a == b)

(* The read-only control-flow view (flow_of/static_successors/
   is_block_head) must agree with the reference AST interpreter: every
   transition between committed instructions is one the static view
   predicts — a static successor where the flow is static, a block head
   where it is indirect. Runs on every example program under every
   strategy. *)
let test_static_successors_agree () =
  List.iter
    (fun (name, inst) ->
      let m = Instance.machine inst in
      let prog = Instance.program inst in
      let uops = Uop.decode prog ~code_base:(Machine.code_base m) in
      let prev = ref None in
      let observe (info : Machine.exec_info) =
        let j = info.Machine.index in
        (match !prev with
        | Some (p : Machine.exec_info) when p.Machine.signal = None ->
          let i = p.Machine.index in
          (match Uop.flow_of uops.(i) with
          | Uop.Indirect_jump | Uop.Indirect_call | Uop.Return ->
            check_bool
              (Printf.sprintf "%s: #%d indirect/ret lands on a block head" name i)
              true (Uop.is_block_head uops j)
          | Uop.Stop -> Alcotest.failf "%s: executed past halt at #%d" name i
          | _ ->
            check_bool
              (Printf.sprintf "%s: #%d -> #%d statically predicted" name i j)
              true
              (List.mem j (Uop.static_successors uops i)))
        | _ -> ());
        (* a delivered signal redirects control to the handler: the next
           transition is the kernel's, not the program's *)
        prev := Some info;
        let h = Uop.block_head uops j in
        check_bool
          (Printf.sprintf "%s: #%d head #%d is a head at or before it" name j h)
          true
          (h <= j && Uop.is_block_head uops h && uops.(h).Uop.block_last >= j)
      in
      match Machine.run ~fuel:30_000_000 m observe with
      | Machine.Running -> Alcotest.failf "%s: out of fuel" name
      | Machine.Halted | Machine.Faulted _ -> ())
    (sample_instances ())

(* Fast engine: cycles, rax, and status identical across all three
   tiers, with the AST interpreter as the reference. *)
let test_fast_engine_equivalence () =
  List.iter
    (fun (name, w) ->
      List.iter
        (fun s ->
          let run () =
            let inst = Instance.instantiate ~strategy:s w in
            let cycles, status = Instance.run_fast inst in
            (cycles, status, Instance.result_rax inst)
          in
          let c_ref, st_ref, rax_ref = with_tier Ast run in
          List.iter
            (fun t ->
              let c, st, rax = with_tier t run in
              let id =
                Printf.sprintf "%s/%s/%s" name (Strategy.to_string s) (tier_name t)
              in
              check_bool (id ^ ": status") true (st = st_ref);
              check_int (id ^ ": rax") rax_ref rax;
              exact_float (id ^ ": fast cycles") c_ref c)
            [ Uop_dispatch; Block ])
        Strategy.all)
    Sightglass.all

(* Cycle engine: every counter of the result record must match exactly,
   not just total cycles — the dynamic hooks (caches, TLB, predictor,
   wrong-path speculation) fire identically per committed instruction. *)
let test_cycle_engine_equivalence () =
  List.iter
    (fun (name, w) ->
      List.iter
        (fun s ->
          let run () =
            let inst = Instance.instantiate ~strategy:s w in
            (Instance.run_cycle inst, Instance.result_rax inst)
          in
          let r_ref, rax_ref = with_tier Ast run in
          List.iter
            (fun t ->
              let r, rax = with_tier t run in
              let id =
                Printf.sprintf "%s/%s/%s" name (Strategy.to_string s) (tier_name t)
              in
              exact_float (id ^ ": cycles") r_ref.Cycle_engine.cycles r.Cycle_engine.cycles;
              check_int (id ^ ": instrs") r_ref.Cycle_engine.instrs r.Cycle_engine.instrs;
              check_int (id ^ ": icache") r_ref.Cycle_engine.icache_misses r.Cycle_engine.icache_misses;
              check_int (id ^ ": dcache") r_ref.Cycle_engine.dcache_misses r.Cycle_engine.dcache_misses;
              check_int (id ^ ": dtlb") r_ref.Cycle_engine.dtlb_misses r.Cycle_engine.dtlb_misses;
              check_int (id ^ ": cond-mispredicts") r_ref.Cycle_engine.cond_mispredicts
                r.Cycle_engine.cond_mispredicts;
              check_int (id ^ ": indirect-mispredicts") r_ref.Cycle_engine.indirect_mispredicts
                r.Cycle_engine.indirect_mispredicts;
              check_int (id ^ ": drains") r_ref.Cycle_engine.drains r.Cycle_engine.drains;
              check_int (id ^ ": transient") r_ref.Cycle_engine.transient_instrs
                r.Cycle_engine.transient_instrs;
              check_bool (id ^ ": status") true
                (r.Cycle_engine.status = r_ref.Cycle_engine.status);
              check_int (id ^ ": rax") rax_ref rax)
            [ Uop_dispatch; Block ])
        Strategy.all)
    Sightglass.all

(* Fig. 3 synthetic SPEC profiles on the cycle engine: the exact floats
   that feed the paper's headline table must not move with the dispatch
   mode. *)
let test_fig3_equivalence () =
  let profiles = List.filteri (fun k _ -> k < 2) Hfi_workloads.Spec.profiles in
  List.iter
    (fun p ->
      List.iter
        (fun s ->
          let run () = Hfi_experiments.Fig3_spec.run_one s p ~iters_divisor:16 in
          let reference = with_tier Ast run in
          List.iter
            (fun t ->
              exact_float
                (Printf.sprintf "%s/%s/%s" p.Hfi_workloads.Spec.name
                   (Strategy.to_string s) (tier_name t))
                reference (with_tier t run))
            [ Uop_dispatch; Block ])
        Strategy.all)
    profiles

(* Seeded differential fuzzing: generated Wasm modules, compiled under a
   rotating strategy, must produce the same outcome and the same modeled
   cycles under every tier. *)
let test_fuzz_differential () =
  let outcome_t = Alcotest.testable Hfi_wasm.Wasm_interp.pp_outcome ( = ) in
  let rng = Hfi_util.Prng.create ~seed:0xC0FFEE in
  let strategies = Array.of_list Strategy.all in
  for k = 1 to 200 do
    let m = Hfi_experiments.Fuzz.generate rng in
    let strategy = strategies.(k mod Array.length strategies) in
    let run () = Hfi_wasm.Wasm_compile.run ~strategy m in
    let o_ref, c_ref = with_tier Ast run in
    List.iter
      (fun t ->
        let o, c = with_tier t run in
        let id = Printf.sprintf "fuzz #%d (%s, %s)" k (Strategy.to_string strategy) (tier_name t) in
        Alcotest.check outcome_t (id ^ ": outcome") o_ref o;
        exact_float (id ^ ": cycles") c_ref c)
      [ Uop_dispatch; Block ]
  done

let suite =
  [
    Alcotest.test_case "dispatch_tier names the active tier" `Quick test_dispatch_tier_names;
    Alcotest.test_case "decode metadata matches Instr" `Quick test_decode_metadata;
    Alcotest.test_case "decode is memoized per program" `Quick test_decode_memoized;
    Alcotest.test_case "static successors agree with execution" `Quick
      test_static_successors_agree;
    Alcotest.test_case "fast engine: all tiers identical" `Quick test_fast_engine_equivalence;
    Alcotest.test_case "cycle engine: all tiers identical" `Quick test_cycle_engine_equivalence;
    Alcotest.test_case "fig3 cycles: all tiers identical" `Slow test_fig3_equivalence;
    Alcotest.test_case "fuzz differential: all tiers" `Slow test_fuzz_differential;
  ]
