open Hfi_pipeline
open Hfi_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_kernel strategy w =
  let inst = Hfi_wasm.Instance.instantiate ~strategy w in
  let _, status = Hfi_wasm.Instance.run_fast ~fuel:20_000_000 inst in
  (status, Hfi_wasm.Instance.result_rax inst)

let test_kernel_completes (name, w) () =
  let status, _ = run_kernel Hfi_sfi.Strategy.Guard_pages w in
  if status <> Machine.Halted then Alcotest.failf "%s did not halt" name

let test_kernel_strategies_agree (name, w) () =
  let _, r_guard = run_kernel Hfi_sfi.Strategy.Guard_pages w in
  let _, r_bounds = run_kernel Hfi_sfi.Strategy.Bounds_checks w in
  let _, r_hfi = run_kernel Hfi_sfi.Strategy.Hfi w in
  check_int (name ^ ": bounds = guard") r_guard r_bounds;
  check_int (name ^ ": hfi = guard") r_guard r_hfi

let test_known_results () =
  List.iter
    (fun (name, w) ->
      match Sightglass.expected_result name with
      | None -> ()
      | Some expected ->
        let status, r = run_kernel Hfi_sfi.Strategy.Hfi w in
        check_bool (name ^ " halted") true (status = Machine.Halted);
        check_int name expected r)
    Sightglass.all

let test_sixteen_kernels () = check_int "16 kernels" 16 (List.length Sightglass.all)

let test_find () =
  check_bool "find works" true (Sightglass.find "sieve" == List.assoc "sieve" Sightglass.all);
  Alcotest.check_raises "unknown kernel" Not_found (fun () -> ignore (Sightglass.find "nope"))

(* Spec profiles and remaining workload families. *)

let test_spec_profiles_complete () =
  check_int "10 SPEC benchmarks" 10 (List.length Spec.profiles);
  List.iter
    (fun p ->
      check_bool (p.Spec.name ^ " wss is a power of two") true
        (p.Spec.wss_bytes land (p.Spec.wss_bytes - 1) = 0))
    Spec.profiles

let test_spec_workloads_halt () =
  List.iter
    (fun name ->
      let p = Spec.find name in
      let p = { p with Spec.iters = 4 } in
      let inst = Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi (Spec.workload p) in
      let _, status = Hfi_wasm.Instance.run_fast ~fuel:10_000_000 inst in
      check_bool (name ^ " halts") true (status = Machine.Halted))
    [ "400.perlbench"; "429.mcf"; "462.libquantum" ]

let test_spec_pool_shrink_monotone () =
  let p = { (Spec.find "400.perlbench") with Spec.iters = 10 } in
  let cycles shrink =
    let inst =
      Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi
        (Spec.workload ~pool_shrink:shrink p)
    in
    fst (Hfi_wasm.Instance.run_fast inst)
  in
  check_bool "more reserved registers never helps" true (cycles 2 >= cycles 0)

let test_firefox_workloads_halt () =
  List.iter
    (fun w ->
      let inst = Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi w in
      let _, status = Hfi_wasm.Instance.run_fast ~fuel:20_000_000 inst in
      check_bool "halts" true (status = Machine.Halted))
    [ Firefox.image_decode Firefox.R240p Firefox.Default; Firefox.font_reflow () ]

let test_firefox_row_transitions () =
  let inst =
    Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi
      (Firefox.image_decode Firefox.R240p Firefox.None_)
  in
  ignore (Hfi_wasm.Instance.run_fast inst);
  let st = Hfi_core.Hfi.stats (Hfi_wasm.Instance.hfi inst) in
  check_int "one serialized enter per row" (Firefox.image_rows Firefox.R240p) st.Hfi_core.Hfi.enters

let test_faas_kernels_halt () =
  List.iter
    (fun (w : Faas_workloads.t) ->
      let inst = Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Guard_pages w.Faas_workloads.workload in
      let _, status = Hfi_wasm.Instance.run_fast ~fuel:20_000_000 inst in
      check_bool (w.Faas_workloads.name ^ " halts") true (status = Machine.Halted))
    Faas_workloads.all

let test_emulation_removes_hfi_instrs () =
  let w = Sightglass.find "xchacha20" in
  let native = Hfi_wasm.Instance.build_program ~strategy:Hfi_sfi.Strategy.Hfi w in
  let emu = Hfi_wasm.Emulation.transform ~heap_base:Hfi_wasm.Layout.heap_base native in
  Array.iter
    (fun i ->
      check_bool "no HFI instruction survives emulation" true
        (Hfi_wasm.Emulation.is_emulation_instr i))
    (Hfi_isa.Program.instrs emu);
  check_int "instruction count preserved (1:1 transform)"
    (Hfi_isa.Program.length native) (Hfi_isa.Program.length emu)

let suite =
  [
    Alcotest.test_case "16 kernels present" `Quick test_sixteen_kernels;
    Alcotest.test_case "known results" `Quick test_known_results;
    Alcotest.test_case "find" `Quick test_find;
  ]
  @ List.map
      (fun (name, w) ->
        Alcotest.test_case (Printf.sprintf "%s completes" name) `Quick
          (test_kernel_completes (name, w)))
      Sightglass.all
  @ List.map
      (fun (name, w) ->
        Alcotest.test_case (Printf.sprintf "%s strategy agreement" name) `Quick
          (test_kernel_strategies_agree (name, w)))
      Sightglass.all
  @ [
      Alcotest.test_case "spec profiles complete" `Quick test_spec_profiles_complete;
      Alcotest.test_case "spec workloads halt" `Quick test_spec_workloads_halt;
      Alcotest.test_case "pool shrink monotone" `Quick test_spec_pool_shrink_monotone;
      Alcotest.test_case "firefox workloads halt" `Quick test_firefox_workloads_halt;
      Alcotest.test_case "firefox per-row transitions" `Quick test_firefox_row_transitions;
      Alcotest.test_case "faas kernels halt" `Quick test_faas_kernels_halt;
      Alcotest.test_case "emulation removes HFI instructions" `Quick test_emulation_removes_hfi_instrs;
    ]
