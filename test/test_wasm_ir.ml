(* The mini-Wasm layer: validator unit tests, reference-interpreter unit
   tests, and differential tests — every validated module must compute
   the same thing interpreted and compiled-then-executed on the machine
   model, under every isolation strategy. *)

open Hfi_wasm
open Wasm_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let strategies = Hfi_sfi.Strategy.[ Guard_pages; Bounds_checks; Masking; Hfi ]

(* --- sample modules --- *)

(* Iterative factorial of local 0. *)
let fact_body =
  [
    Const 1;
    Local_set 1;
    (* acc = 1 *)
    Block
      [
        Loop
          [
            Local_get 0;
            Eqz;
            Br_if 1;
            (* exit when n = 0 *)
            Local_get 1;
            Local_get 0;
            Binop Mul;
            Local_set 1;
            Local_get 0;
            Const 1;
            Binop Sub;
            Local_set 0;
            Br 0;
          ];
      ];
    Local_get 1;
  ]

let fact_module n =
  module_ ~start:0
    [|
      func ~name:"main" ~results:1 [ Const n; Call 1 ];
      func ~name:"fact" ~params:1 ~locals:1 ~results:1 fact_body;
    |]

(* Recursive fibonacci. *)
let fib_module n =
  module_ ~start:0
    [|
      func ~name:"main" ~results:1 [ Const n; Call 1 ];
      func ~name:"fib" ~params:1 ~results:1
        [
          Local_get 0;
          Const 2;
          Relop Lt_s;
          If
            ( [ Local_get 0; Local_set 0 ],
              [
                Local_get 0;
                Const 1;
                Binop Sub;
                Call 1;
                Local_get 0;
                Const 2;
                Binop Sub;
                Call 1;
                Binop Add;
                Local_set 0;
              ] );
          Local_get 0;
        ];
    |]

(* Sum the first n 8-byte words of memory (initialized by a data seg). *)
let memsum_module =
  let data = String.init 64 (fun i -> if i mod 8 = 0 then Char.chr (i / 8 + 1) else '\000') in
  module_ ~start:0 ~memory_pages:1 ~data:[ (0, data) ]
    [|
      func ~name:"main" ~locals:2 ~results:1
        [
          Const 0;
          Local_set 0;
          (* i *)
          Const 0;
          Local_set 1;
          (* acc *)
          Block
            [
              Loop
                [
                  Local_get 0;
                  Const 8;
                  Relop Ge_s;
                  Br_if 1;
                  Local_get 1;
                  Local_get 0;
                  Const 8;
                  Binop Mul;
                  Load { bytes = 8; offset = 0 };
                  Binop Add;
                  Local_set 1;
                  Local_get 0;
                  Const 1;
                  Binop Add;
                  Local_set 0;
                  Br 0;
                ];
            ];
          Local_get 1;
        ];
    |]

(* Store then reload through memory, with globals in the mix. *)
let store_module =
  module_ ~start:0 ~globals:[| 7; 0 |]
    [|
      func ~name:"main" ~results:1
        [
          Const 100;
          Global_get 0;
          Const 6;
          Binop Mul;
          Store { bytes = 4; offset = 8 };
          (* mem[108..111] = 42 *)
          Const 100;
          Load { bytes = 4; offset = 8 };
          Global_set 1;
          Global_get 1;
        ];
    |]

(* Nested loops: sum of triangular numbers T_1..T_6 = 56. The inner
   loop's trip count is carried in a local the outer loop mutates. *)
let nested_loops_module =
  module_ ~start:0
    [|
      func ~name:"main" ~locals:3 ~results:1
        [
          Const 0;
          Local_set 0;
          (* i *)
          Const 0;
          Local_set 2;
          (* acc *)
          Block
            [
              Loop
                [
                  Local_get 0;
                  Const 6;
                  Relop Ge_s;
                  Br_if 1;
                  Local_get 0;
                  Const 1;
                  Binop Add;
                  Local_set 0;
                  Const 0;
                  Local_set 1;
                  (* j *)
                  Block
                    [
                      Loop
                        [
                          Local_get 1;
                          Local_get 0;
                          Relop Ge_s;
                          Br_if 1;
                          Local_get 1;
                          Const 1;
                          Binop Add;
                          Local_set 1;
                          Local_get 2;
                          Local_get 1;
                          Binop Add;
                          Local_set 2;
                          Br 0;
                        ];
                    ];
                  Br 0;
                ];
            ];
          Local_get 2;
        ];
    |]

(* Loop-carried memory index: pointer chasing, where each iteration's
   load address is the previous iteration's loaded value — the checked
   index is genuinely loop-variant and statically unbounded. Chain:
   mem[0]=24, mem[24]=48, mem[48]=8, mem[8]=0; four hops from 0 visit
   24, 48, 8, 0 and sum to 80. *)
let chase_module =
  let data =
    String.init 64 (fun p -> Char.chr (match p with 0 -> 24 | 24 -> 48 | 48 -> 8 | _ -> 0))
  in
  module_ ~start:0 ~memory_pages:1 ~data:[ (0, data) ]
    [|
      func ~name:"main" ~locals:3 ~results:1
        [
          Const 4;
          Local_set 2;
          (* hops left *)
          Block
            [
              Loop
                [
                  Local_get 2;
                  Eqz;
                  Br_if 1;
                  Local_get 0;
                  Load { bytes = 8; offset = 0 };
                  Local_set 0;
                  Local_get 1;
                  Local_get 0;
                  Binop Add;
                  Local_set 1;
                  Local_get 2;
                  Const 1;
                  Binop Sub;
                  Local_set 2;
                  Br 0;
                ];
            ];
          Local_get 1;
        ];
    |]

(* A conditional break out of the loop from the middle of the body (not
   the canonical header-test shape): acc += i^2 until acc > 100. *)
let early_exit_module =
  module_ ~start:0
    [|
      func ~name:"main" ~locals:2 ~results:1
        [
          Block
            [
              Loop
                [
                  Local_get 0;
                  Const 1;
                  Binop Add;
                  Local_set 0;
                  Local_get 1;
                  Local_get 0;
                  Local_get 0;
                  Binop Mul;
                  Binop Add;
                  Local_set 1;
                  Local_get 1;
                  Const 100;
                  Relop Gt_s;
                  Br_if 1;
                  Br 0;
                ];
            ];
          Local_get 1;
        ];
    |]

let oob_module =
  module_ ~start:0 ~memory_pages:1
    [| func ~name:"main" [ Const 0x7f000000; Const 1; Store { bytes = 8; offset = 0 } ] |]

let div_zero_module =
  module_ ~start:0
    [| func ~name:"main" ~results:1 [ Const 7; Const 0; Binop Div ] |]

let unreachable_module =
  module_ ~start:0 [| func ~name:"main" [ Block [ Unreachable ] ] |]

(* --- validator --- *)

let valid m = Wasm_validate.validate m = Ok ()

let test_validator_accepts_samples () =
  List.iter
    (fun (name, m) -> check_bool name true (valid m))
    [
      ("fact", fact_module 5);
      ("fib", fib_module 10);
      ("memsum", memsum_module);
      ("store", store_module);
      ("nested-loops", nested_loops_module);
      ("chase", chase_module);
      ("early-exit", early_exit_module);
      ("oob", oob_module);
      ("div0", div_zero_module);
      ("unreachable", unreachable_module);
    ]

let expect_invalid name m = check_bool name false (valid m)

let test_validator_rejects () =
  expect_invalid "stack underflow"
    (module_ ~start:0 [| func ~name:"m" [ Drop ] |]);
  expect_invalid "unbalanced body"
    (module_ ~start:0 [| func ~name:"m" [ Const 1 ] |]);
  expect_invalid "missing result"
    (module_ ~start:0 [| func ~name:"m" ~results:1 [ Nop ] |]);
  expect_invalid "bad label"
    (module_ ~start:0 [| func ~name:"m" [ Block [ Br 2 ] ] |]);
  expect_invalid "bad local"
    (module_ ~start:0 [| func ~name:"m" [ Local_get 0; Drop ] |]);
  expect_invalid "bad global"
    (module_ ~start:0 [| func ~name:"m" [ Global_get 0; Drop ] |]);
  expect_invalid "bad call target"
    (module_ ~start:0 [| func ~name:"m" [ Call 3 ] |]);
  expect_invalid "start with params"
    (module_ ~start:0 [| func ~name:"m" ~params:1 [ ] |]);
  expect_invalid "code after terminator"
    (module_ ~start:0 [| func ~name:"m" [ Block [ Br 0; Nop ] ] |]);
  expect_invalid "br with values on stack"
    (module_ ~start:0 [| func ~name:"m" [ Block [ Const 1; Br 0 ] ] |]);
  expect_invalid "data outside memory"
    (module_ ~start:0 ~memory_pages:1 ~data:[ (65530, "0123456789") ]
       [| func ~name:"m" [] |]);
  expect_invalid "unvalidated width"
    (module_ ~start:0 [| func ~name:"m" [ Const 0; Load { bytes = 3; offset = 0 }; Drop ] |])

(* --- interpreter --- *)

let test_interp_samples () =
  check_bool "fact 5" true (Wasm_interp.run (fact_module 5) = Wasm_interp.Value 120);
  check_bool "fib 10" true (Wasm_interp.run (fib_module 10) = Wasm_interp.Value 55);
  check_bool "memsum" true (Wasm_interp.run memsum_module = Wasm_interp.Value 36);
  check_bool "store/globals" true (Wasm_interp.run store_module = Wasm_interp.Value 42);
  check_bool "oob" true
    (match Wasm_interp.run oob_module with Wasm_interp.Trap (Wasm_interp.Out_of_bounds _) -> true | _ -> false);
  check_bool "div0" true (Wasm_interp.run div_zero_module = Wasm_interp.Trap Wasm_interp.Division_by_zero);
  check_bool "unreachable" true
    (Wasm_interp.run unreachable_module = Wasm_interp.Trap Wasm_interp.Unreachable_executed)

let test_interp_memory_effect () =
  check_int "store visible in memory" 42 (Wasm_interp.memory_byte store_module 108)

let test_interp_select () =
  let m sel =
    module_ ~start:0
      [| func ~name:"m" ~results:1 [ Const 11; Const 22; Const sel; Select ] |]
  in
  check_bool "select true" true (Wasm_interp.run (m 1) = Wasm_interp.Value 11);
  check_bool "select false" true (Wasm_interp.run (m 0) = Wasm_interp.Value 22)

let test_interp_call_stack_limit () =
  let infinite =
    module_ ~start:0 [| func ~name:"m" [ Call 0 ] |]
  in
  check_bool "exhausts" true
    (Wasm_interp.run infinite = Wasm_interp.Trap Wasm_interp.Call_stack_exhausted)

(* --- compiled vs interpreted --- *)

let outcomes_match (a : Wasm_interp.outcome) (b : Wasm_interp.outcome) =
  match (a, b) with
  | Wasm_interp.Value x, Wasm_interp.Value y -> x = y
  | Wasm_interp.No_value, Wasm_interp.No_value -> true
  | Wasm_interp.Trap (Wasm_interp.Out_of_bounds _), Wasm_interp.Trap (Wasm_interp.Out_of_bounds _)
    ->
    true
  | Wasm_interp.Trap ta, Wasm_interp.Trap tb -> ta = tb
  | _ -> false

let differential name m =
  let reference = Wasm_interp.run m in
  List.iter
    (fun s ->
      if s = Hfi_sfi.Strategy.Masking && (match reference with Wasm_interp.Trap _ -> true | _ -> false)
      then () (* masking has no trap semantics, by design (SS2) *)
      else begin
        let compiled, _ = Wasm_compile.run ~strategy:s m in
        if not (outcomes_match reference compiled) then
          Alcotest.failf "%s under %s: interp %s vs compiled %s" name
            (Hfi_sfi.Strategy.to_string s)
            (Format.asprintf "%a" Wasm_interp.pp_outcome reference)
            (Format.asprintf "%a" Wasm_interp.pp_outcome compiled)
      end)
    strategies

let test_compiled_matches_interp () =
  differential "fact" (fact_module 8);
  differential "fib" (fib_module 12);
  differential "memsum" memsum_module;
  differential "store" store_module;
  differential "div0" div_zero_module;
  differential "unreachable" unreachable_module

(* Loop-heavy shapes the optimizing middle-end works hardest on: nested
   loops, a loop-carried (statically unbounded) memory index, and a
   br_if exit from the middle of a loop body. The compiled side goes
   through the default pipeline, so this differential doubles as an
   end-to-end translation-validation check on the loop passes. *)
let test_loop_heavy_modules () =
  check_bool "nested loops interp" true
    (Wasm_interp.run nested_loops_module = Wasm_interp.Value 56);
  check_bool "chase interp" true (Wasm_interp.run chase_module = Wasm_interp.Value 80);
  check_bool "early exit interp" true
    (Wasm_interp.run early_exit_module = Wasm_interp.Value 140);
  differential "nested-loops" nested_loops_module;
  differential "chase" chase_module;
  differential "early-exit" early_exit_module

let test_compiled_oob_containment () =
  (* The compiled OOB store must trap under precise-trap strategies. *)
  List.iter
    (fun s ->
      let outcome, _ = Wasm_compile.run ~strategy:s oob_module in
      match outcome with
      | Wasm_interp.Trap (Wasm_interp.Out_of_bounds _) -> ()
      | o ->
        Alcotest.failf "oob under %s: %s" (Hfi_sfi.Strategy.to_string s)
          (Format.asprintf "%a" Wasm_interp.pp_outcome o))
    Hfi_sfi.Strategy.[ Guard_pages; Bounds_checks; Hfi ]

let test_invalid_module_rejected_by_compiler () =
  let bad = module_ ~start:0 [| func ~name:"m" [ Drop ] |] in
  check_bool "raises" true
    (try
       ignore (Wasm_compile.run ~strategy:Hfi_sfi.Strategy.Hfi bad);
       false
     with Wasm_compile.Invalid_module _ -> true)

(* Random expression modules: generate postfix instruction sequences
   with an explicit depth budget — valid by construction — and compare
   compiled vs interpreted under every strategy. *)
let gen_instrs =
  let open QCheck.Gen in
  let rec emit depth budget acc =
    if budget <= 0 then
      (* close out: reduce the stack to exactly one result *)
      let rec close depth acc =
        if depth = 0 then List.rev (Const 1 :: acc)
        else if depth = 1 then List.rev acc
        else close (depth - 1) (Binop Xor :: acc)
      in
      return (close depth acc)
    else
      let choices =
        List.concat
          [
            [ (3, map (fun v -> `Push (Const (v - 128))) (int_bound 256)) ];
            [ (1, return (`Push (Local_get 0))) ];
            (if depth >= 1 then
               [ (1, return `Tee); (1, map (fun o -> `Loadm o) (int_bound 512)) ]
             else []);
            (if depth >= 2 then
               [
                 (3, map (fun op -> `Bin op) (oneofl [ Add; Sub; Mul; And; Or; Xor; Shl; Shr_u ]));
                 (1, map (fun r -> `Rel r) (oneofl [ Eq; Ne; Lt_s; Le_s; Gt_s; Ge_s; Lt_u; Ge_u ]));
                 (1, map (fun o -> `Storem o) (int_bound 512));
               ]
             else []);
            (if depth >= 3 then [ (1, return `Select) ] else []);
          ]
      in
      let* choice = frequency choices in
      match choice with
      | `Push i -> emit (depth + 1) (budget - 1) (i :: acc)
      | `Tee -> emit depth (budget - 1) (Local_tee 0 :: acc)
      | `Bin op -> emit (depth - 1) (budget - 1) (Binop op :: acc)
      | `Rel r -> emit (depth - 1) (budget - 1) (Relop r :: acc)
      | `Select -> emit (depth - 2) (budget - 1) (Select :: acc)
      | `Loadm off ->
        (* mask the address into the one-page memory before loading *)
        emit depth (budget - 1)
          (Load { bytes = 8; offset = off } :: Binop And :: Const 0xfff :: acc)
      | `Storem off ->
        (* the unmasked address may be out of bounds: both sides must
           then agree on the trap *)
        emit (depth - 2) (budget - 1) (Store { bytes = 8; offset = off } :: acc)
  in
  let* budget = QCheck.Gen.int_range 4 40 in
  emit 0 budget []

let prop_differential_random_exprs =
  QCheck.Test.make ~name:"compiled modules match the reference interpreter" ~count:120
    (QCheck.make gen_instrs)
    (fun body ->
      let m =
        module_ ~start:0 ~memory_pages:1
          [| func ~name:"main" ~locals:1 ~results:1 body |]
      in
      match Wasm_validate.validate m with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let reference = Wasm_interp.run m in
        List.for_all
          (fun s ->
            match reference with
            | Wasm_interp.Trap _ when s = Hfi_sfi.Strategy.Masking -> true
            | _ ->
              let compiled, _ = Wasm_compile.run ~strategy:s m in
              outcomes_match reference compiled)
          strategies)

(* --- textual format round-trips --- *)

let modules_for_roundtrip =
  [
    ("fact", fact_module 5);
    ("fib", fib_module 7);
    ("memsum", memsum_module);
    ("store", store_module);
    ("oob", oob_module);
    ("div0", div_zero_module);
    ("unreachable", unreachable_module);
  ]

let test_text_roundtrip () =
  List.iter
    (fun (name, m) ->
      match Wasm_text.parse (Wasm_text.to_string m) with
      | Error e -> Alcotest.failf "%s failed to re-parse: %s" name e
      | Ok m' ->
        if m' <> m then Alcotest.failf "%s did not round-trip" name;
        (* and it still runs identically *)
        check_bool (name ^ " same outcome") true (Wasm_interp.run m = Wasm_interp.run m'))
    modules_for_roundtrip

let test_text_parse_errors () =
  let bad = [ "("; "(module)"; "(module (memory 1) (start 0) (func))";
              "(module (memory 1) (start 0) (wat 1))" ] in
  List.iter
    (fun src ->
      match Wasm_text.parse src with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" src
      | Error e -> check_bool "error message non-empty" true (String.length e > 0))
    bad

let test_text_parse_and_run () =
  let src =
    "(module (memory 1) (start 0)\n\
     (func $main (params 0) (locals 1) (results 1)\n\
     (i64.const 6) (local.set 0)\n\
     (local.get 0) (local.get 0) (i64.mul)))"
  in
  let m = Wasm_text.parse_exn src in
  check_bool "validates" true (Wasm_validate.validate m = Ok ());
  check_bool "interp" true (Wasm_interp.run m = Wasm_interp.Value 36);
  let outcome, _ = Wasm_compile.run ~strategy:Hfi_sfi.Strategy.Hfi m in
  check_bool "compiled" true (outcome = Wasm_interp.Value 36)

let prop_text_roundtrip_random =
  QCheck.Test.make ~name:"generated modules round-trip through the text format" ~count:80
    (QCheck.make gen_instrs)
    (fun body ->
      let m =
        module_ ~start:0 ~memory_pages:1 [| func ~name:"main" ~locals:1 ~results:1 body |]
      in
      match Wasm_text.parse (Wasm_text.to_string m) with Ok m' -> m' = m | Error _ -> false)

let suite =
  [
    Alcotest.test_case "validator accepts samples" `Quick test_validator_accepts_samples;
    Alcotest.test_case "validator rejections" `Quick test_validator_rejects;
    Alcotest.test_case "interp samples" `Quick test_interp_samples;
    Alcotest.test_case "interp memory effects" `Quick test_interp_memory_effect;
    Alcotest.test_case "interp select" `Quick test_interp_select;
    Alcotest.test_case "interp call-stack limit" `Quick test_interp_call_stack_limit;
    Alcotest.test_case "compiled matches interp (samples)" `Quick test_compiled_matches_interp;
    Alcotest.test_case "loop-heavy modules (nested/carried/early-exit)" `Quick
      test_loop_heavy_modules;
    Alcotest.test_case "compiled OOB containment" `Quick test_compiled_oob_containment;
    Alcotest.test_case "compiler rejects invalid" `Quick test_invalid_module_rejected_by_compiler;
    QCheck_alcotest.to_alcotest prop_differential_random_exprs;
    Alcotest.test_case "text round-trips (samples)" `Quick test_text_roundtrip;
    Alcotest.test_case "text parse errors" `Quick test_text_parse_errors;
    Alcotest.test_case "text parse and run" `Quick test_text_parse_and_run;
    QCheck_alcotest.to_alcotest prop_text_roundtrip_random;
  ]

