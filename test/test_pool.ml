(* The domain pool: results must come back in input order whatever the
   parallelism, exceptions must propagate, and nested pools must not
   spawn domains from inside workers. *)

module Pool = Hfi_util.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

let squares n = List.init n (fun i -> i * i)

let test_map_sequential () =
  check_ints "jobs=1" (squares 20) (Pool.map ~jobs:1 (fun i -> i * i) (List.init 20 Fun.id))

let test_map_order_preserved () =
  (* Skew the work so completion order differs from input order. *)
  let f i =
    let spin = if i mod 2 = 0 then 10_000 else 10 in
    let acc = ref 0 in
    for _ = 1 to spin do
      incr acc
    done;
    ignore !acc;
    i * i
  in
  check_ints "jobs=4" (squares 50) (Pool.map ~jobs:4 f (List.init 50 Fun.id));
  check_ints "jobs > items" (squares 3) (Pool.map ~jobs:16 f (List.init 3 Fun.id))

let test_map_empty_and_singleton () =
  check_ints "empty" [] (Pool.map ~jobs:4 (fun i -> i) []);
  check_ints "singleton" [ 7 ] (Pool.map ~jobs:4 (fun i -> i + 1) [ 6 ])

let test_exception_propagates () =
  let raised =
    try
      ignore (Pool.map ~jobs:4 (fun i -> if i = 13 then failwith "boom" else i) (List.init 32 Fun.id));
      false
    with Failure m -> m = "boom"
  in
  check_bool "Failure re-raised in caller" true raised

let test_remaining_items_still_run () =
  (* One failing item must not prevent the others from executing. *)
  let ran = Array.make 16 false in
  (try ignore (Pool.map ~jobs:4 (fun i -> ran.(i) <- true; if i = 3 then failwith "x" else i) (List.init 16 Fun.id))
   with Failure _ -> ());
  check_int "all items attempted" 16 (Array.fold_left (fun a b -> if b then a + 1 else a) 0 ran)

(* Satellite: the jobs=1 path must share the parallel path's exception
   contract — run everything, then re-raise the first failure. *)
let test_sequential_matches_parallel_semantics () =
  let run jobs =
    let ran = Array.make 12 false in
    let raised =
      try
        Pool.iteri ~jobs 12 (fun i ->
            ran.(i) <- true;
            if i = 2 then failwith "first" else if i = 9 then failwith "second");
        None
      with Failure m -> Some m
    in
    (Array.for_all Fun.id ran, raised)
  in
  let seq = run 1 in
  check_bool "jobs=1 runs every item" true (fst seq);
  check_bool "jobs=1 re-raises the first failure" true (snd seq = Some "first");
  check_bool "jobs=1 runs all items exactly like jobs=4" true (fst (run 4));
  (* The parallel path re-raises the first failure by completion time;
     with jobs=1 completion order is input order, so it is exactly the
     first failing item. *)
  let bt_preserved =
    Printexc.record_backtrace true;
    try
      Pool.iteri ~jobs:1 3 (fun i -> if i = 1 then failwith "bt");
      false
    with Failure _ -> true
  in
  check_bool "exception escapes with its backtrace intact" true bt_preserved

let test_nested_pool () =
  (* Inner maps run sequentially inside workers; results still correct. *)
  let outer =
    Pool.map ~jobs:3
      (fun i -> List.fold_left ( + ) 0 (Pool.map ~jobs:3 (fun j -> (i * 10) + j) (List.init 4 Fun.id)))
      (List.init 6 Fun.id)
  in
  check_ints "nested results" (List.init 6 (fun i -> (i * 40) + 6)) outer

let test_iteri_fills_every_slot () =
  let out = Array.make 100 (-1) in
  Pool.iteri ~jobs:4 100 (fun i -> out.(i) <- i * 3);
  check_ints "all slots, in order" (List.init 100 (fun i -> i * 3)) (Array.to_list out)

let test_default_jobs_floor () =
  (* Whatever HFI_JOBS says in the test environment, the result is a
     usable parallelism degree. *)
  check_bool "default_jobs >= 1" true (Pool.default_jobs () >= 1)

(* An invalid HFI_JOBS falls back to 1 and complains on stderr at most
   once per process, however many times the environment is re-read
   (batches call default_jobs on every run_many without an explicit
   jobs). *)
let test_invalid_jobs_warns_once () =
  let capture f =
    let tmp = Filename.temp_file "pool_warn" ".err" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
    let saved = Unix.dup Unix.stderr in
    flush stderr;
    Unix.dup2 fd Unix.stderr;
    Unix.close fd;
    Fun.protect
      ~finally:(fun () ->
        flush stderr;
        Unix.dup2 saved Unix.stderr;
        Unix.close saved)
      f;
    let s = In_channel.with_open_text tmp In_channel.input_all in
    Sys.remove tmp;
    s
  in
  let saved_jobs = Sys.getenv_opt Pool.jobs_env_var in
  Unix.putenv Pool.jobs_env_var "banana";
  let out =
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv Pool.jobs_env_var (Option.value saved_jobs ~default:""))
      (fun () ->
        capture (fun () ->
            for _ = 1 to 5 do
              check_int "invalid value falls back to 1 job" 1 (Pool.default_jobs ())
            done))
  in
  let occurrences needle hay =
    let n = String.length hay and m = String.length needle in
    let rec go i acc =
      if i + m > n then acc
      else go (i + 1) (if String.sub hay i m = needle then acc + 1 else acc)
    in
    go 0 0
  in
  (* At most once per PROCESS: an earlier test (or a prior call of this
     one in a looped runner) may already have burned the warning. *)
  check_bool "warning printed at most once across five reads" true
    (occurrences "ignoring invalid" out <= 1)

let suite =
  [
    Alcotest.test_case "map jobs=1 is plain map" `Quick test_map_sequential;
    Alcotest.test_case "map preserves input order under parallelism" `Quick test_map_order_preserved;
    Alcotest.test_case "map on empty and singleton lists" `Quick test_map_empty_and_singleton;
    Alcotest.test_case "worker exception re-raised in caller" `Quick test_exception_propagates;
    Alcotest.test_case "remaining items run after a failure" `Quick test_remaining_items_still_run;
    Alcotest.test_case "sequential path matches parallel exception contract" `Quick
      test_sequential_matches_parallel_semantics;
    Alcotest.test_case "nested pools stay sequential and correct" `Quick test_nested_pool;
    Alcotest.test_case "iteri covers every index" `Quick test_iteri_fills_every_slot;
    Alcotest.test_case "default_jobs never below 1" `Quick test_default_jobs_floor;
    Alcotest.test_case "invalid HFI_JOBS warns once per process" `Quick test_invalid_jobs_warns_once;
  ]
