(* The resilient serving layer: arrival processes, backoff, circuit
   breakers, instance pools with budget degradation, the verified-load
   admission gate, the scheduler's typed budget fault, and the
   end-to-end campaign determinism contract. *)

module Prng = Hfi_util.Prng
module Fault = Hfi_util.Fault
module Strategy = Hfi_sfi.Strategy
module Arrival = Hfi_serving.Arrival
module Backoff = Hfi_serving.Backoff
module Breaker = Hfi_serving.Breaker
module Admission = Hfi_serving.Admission
module Instance_pool = Hfi_serving.Instance_pool
module Chaos = Hfi_serving.Chaos
module Server = Hfi_serving.Server
module Scheduler = Hfi_runtime.Scheduler

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Arrival processes -------------------------------------------- *)

let test_arrival_deterministic_and_ordered () =
  let gen seed process =
    Arrival.generate ~rng:(Prng.create ~seed) ~horizon_s:10.0 process
  in
  List.iter
    (fun process ->
      let a = gen 5 process in
      check_bool "same seed, same stream" true (a = gen 5 process);
      check_bool "different seed, different stream" true (a <> gen 6 process);
      check_bool "non-empty at these rates" true (a <> []);
      let rec ordered last = function
        | [] -> true
        | t :: rest -> t > last && t < 10.0 && ordered t rest
      in
      check_bool "strictly increasing, within horizon" true (ordered (-1.0) a))
    [
      Arrival.Poisson { rate = 50.0 };
      Arrival.Bursty
        { base_rate = 20.0; burst_rate = 120.0; mean_on_s = 0.5; mean_off_s = 0.5 };
    ]

let test_arrival_rate_calibration () =
  (* The empirical rate of a long Poisson stream tracks the nominal
     rate, and mean_rate reports the modulated average for bursty. *)
  let n =
    List.length
      (Arrival.generate ~rng:(Prng.create ~seed:1) ~horizon_s:200.0
         (Arrival.Poisson { rate = 50.0 }))
  in
  check_bool "poisson empirical rate within 10%" true (abs (n - 10_000) < 1000);
  let b =
    Arrival.Bursty { base_rate = 10.0; burst_rate = 90.0; mean_on_s = 1.0; mean_off_s = 1.0 }
  in
  check_bool "bursty mean rate is the phase average" true
    (abs_float (Arrival.mean_rate b -. 50.0) < 1e-9)

(* --- Backoff ------------------------------------------------------ *)

let test_backoff_bounds () =
  let p = { Backoff.base_s = 0.010; multiplier = 2.0; max_s = 0.1; jitter = 0.5 } in
  check_bool "ceiling doubles" true
    (Backoff.ceiling p ~attempt:1 = 0.010
    && Backoff.ceiling p ~attempt:2 = 0.020
    && Backoff.ceiling p ~attempt:3 = 0.040);
  check_bool "ceiling capped" true (Backoff.ceiling p ~attempt:10 = 0.1);
  check_bool "attempt 0 rejected" true
    (match Backoff.ceiling p ~attempt:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let rng = Prng.create ~seed:3 in
  let ok =
    List.init 200 (fun i ->
        let attempt = 1 + (i mod 6) in
        let cap = Backoff.ceiling p ~attempt in
        let d = Backoff.delay p ~rng ~attempt in
        d >= cap *. (1.0 -. p.Backoff.jitter) && d <= cap)
  in
  check_bool "every delay within the jitter band" true (List.for_all Fun.id ok);
  let replay seed =
    let rng = Prng.create ~seed in
    List.init 10 (fun i -> Backoff.delay p ~rng ~attempt:(1 + i))
  in
  check_bool "schedule replayable from seed" true (replay 9 = replay 9)

(* --- Circuit breaker ---------------------------------------------- *)

let test_breaker_state_machine () =
  let p = { Breaker.failure_threshold = 3; cooldown_s = 1.0; half_open_successes = 2 } in
  let b = Breaker.create p in
  check_bool "starts closed" true (Breaker.state_name b = "closed");
  (* below the threshold: still closed; a success resets the count *)
  Breaker.record_failure b ~now:0.0;
  Breaker.record_failure b ~now:0.1;
  Breaker.record_success b ~now:0.2;
  Breaker.record_failure b ~now:0.3;
  Breaker.record_failure b ~now:0.4;
  check_bool "still closed below threshold" true (Breaker.state_name b = "closed");
  Breaker.record_failure b ~now:0.5;
  check_bool "trips at threshold" true (Breaker.state_name b = "open");
  check_int "one trip" 1 (Breaker.trips b);
  check_bool "rejects while open" true (Breaker.decide b ~now:1.0 = Breaker.Reject);
  (* cooldown elapsed: exactly one probe allowed at a time *)
  check_bool "half-open probe after cooldown" true
    (Breaker.decide b ~now:1.6 = Breaker.Allow_probe);
  check_bool "second concurrent probe rejected" true
    (Breaker.decide b ~now:1.6 = Breaker.Reject);
  Breaker.record_success b ~now:1.7;
  check_bool "another probe allowed" true (Breaker.decide b ~now:1.8 = Breaker.Allow_probe);
  Breaker.record_success b ~now:1.9;
  check_bool "closes after enough probe successes" true (Breaker.state_name b = "closed");
  check_bool "closed allows" true (Breaker.decide b ~now:2.0 = Breaker.Allow);
  (* re-trip, then a failed probe re-opens immediately *)
  Breaker.record_failure b ~now:3.0;
  Breaker.record_failure b ~now:3.1;
  Breaker.record_failure b ~now:3.2;
  check_bool "re-tripped" true (Breaker.state_name b = "open");
  check_bool "probe after second cooldown" true
    (Breaker.decide b ~now:4.3 = Breaker.Allow_probe);
  Breaker.record_failure b ~now:4.4;
  check_bool "failed probe re-opens" true (Breaker.state_name b = "open");
  check_int "three trips total" 3 (Breaker.trips b);
  check_bool "rejections counted" true (Breaker.rejected b > 0)

(* --- Instance pool ------------------------------------------------ *)

let test_pool_warm_cold_and_degradation () =
  let policy = { Instance_pool.keep_alive_s = 1.0; hfi_budget = 2 } in
  let pool = Instance_pool.create ~policy () in
  (* first touch is cold, reuse within keep-alive is warm *)
  let a = Instance_pool.acquire pool ~now:0.0 ~tenant:0 ~preferred:Strategy.Hfi in
  check_bool "first acquire is cold" false a.Instance_pool.warm;
  Instance_pool.release pool ~now:0.1 ~tenant:0;
  let b = Instance_pool.acquire pool ~now:0.5 ~tenant:0 ~preferred:Strategy.Hfi in
  check_bool "reuse within keep-alive is warm" true b.Instance_pool.warm;
  check_bool "warm reuse keeps the strategy" true
    (b.Instance_pool.strategy = Strategy.Hfi);
  Instance_pool.release pool ~now:0.5 ~tenant:0;
  (* a lapsed keep-alive is cold again *)
  let c = Instance_pool.acquire pool ~now:5.0 ~tenant:0 ~preferred:Strategy.Hfi in
  check_bool "lapsed keep-alive is cold" false c.Instance_pool.warm;
  Instance_pool.release pool ~now:5.0 ~tenant:0;
  (* budget: two resident HFI instances; the third cold start degrades *)
  let d = Instance_pool.acquire pool ~now:5.1 ~tenant:1 ~preferred:Strategy.Hfi in
  Instance_pool.release pool ~now:5.1 ~tenant:1;
  check_bool "second tenant still HFI" true (d.Instance_pool.strategy = Strategy.Hfi);
  let e = Instance_pool.acquire pool ~now:5.2 ~tenant:2 ~preferred:Strategy.Hfi in
  check_bool "third cold start degrades" true e.Instance_pool.degraded;
  check_bool "degrades to bounds checks" true
    (e.Instance_pool.strategy = Strategy.Bounds_checks);
  check_int "degradation counted" 1 (Instance_pool.degraded pool);
  (* eviction forces the next acquire cold *)
  Instance_pool.release pool ~now:5.2 ~tenant:2;
  Instance_pool.evict pool ~tenant:0;
  let f = Instance_pool.acquire pool ~now:5.3 ~tenant:0 ~preferred:Strategy.Hfi in
  check_bool "evicted tenant is cold" false f.Instance_pool.warm;
  check_int "eviction counted" 1 (Instance_pool.evictions pool);
  check_bool "software preference never degrades" true
    (let g =
       Instance_pool.acquire pool ~now:5.4 ~tenant:3 ~preferred:Strategy.Bounds_checks
     in
     (not g.Instance_pool.degraded) && g.Instance_pool.strategy = Strategy.Bounds_checks)

(* --- Verified-load admission gate --------------------------------- *)

let test_admission_gate_admits_and_caches () =
  let gate = Admission.create () in
  let w = (List.hd Hfi_workloads.Faas_workloads.all).Hfi_workloads.Faas_workloads.workload in
  check_bool "catalog kernel admitted" true
    (Admission.check gate ~strategy:Strategy.Hfi w = Admission.Admitted);
  check_int "first check is a miss" 1 (Admission.misses gate);
  check_bool "re-check admitted" true
    (Admission.check gate ~strategy:Strategy.Hfi w = Admission.Admitted);
  check_int "verdict served from the cache" 1 (Admission.hits gate);
  check_int "no second verification" 1 (Admission.misses gate);
  (* same module under a different strategy is a distinct cache key *)
  ignore (Admission.check gate ~strategy:Strategy.Bounds_checks w);
  check_int "strategy is part of the key" 2 (Admission.misses gate)

let test_admission_gate_rejects_poison_before_execution () =
  (* The acceptance property: a region-escape module is refused under
     every strategy, and the gate never instantiates it — its init hook
     (which only instantiation runs) must never fire. *)
  let init_calls = ref 0 in
  let poison = Admission.poison_workload in
  let traced =
    {
      poison with
      Hfi_wasm.Instance.init =
        (fun mem ~heap_base ->
          incr init_calls;
          poison.Hfi_wasm.Instance.init mem ~heap_base);
    }
  in
  List.iter
    (fun strategy ->
      match Admission.check (Admission.create ()) ~strategy traced with
      | Admission.Admitted ->
        Alcotest.failf "poison admitted under %s" (Strategy.to_string strategy)
      | Admission.Rejected { verdict; _ } ->
        check_bool "refused as unsafe" true (verdict = "unsafe"))
    [ Strategy.Hfi; Strategy.Guard_pages; Strategy.Bounds_checks ];
  check_int "never instantiated: init never ran" 0 !init_calls

(* --- Scheduler budget fault (typed, not an exception) ------------- *)

let test_scheduler_budget_exhaustion_is_typed () =
  let sched = Scheduler.create () in
  let w = Hfi_workloads.Sightglass.find "sieve" in
  Scheduler.spawn_instance sched ~name:"a"
    (Hfi_wasm.Instance.instantiate ~strategy:Strategy.Hfi w);
  Scheduler.spawn_instance sched ~name:"b"
    (Hfi_wasm.Instance.instantiate ~strategy:Strategy.Hfi w);
  (match Scheduler.run ~quantum:50 ~max_switches:3 sched with
  | Ok () -> Alcotest.fail "three switches cannot finish two sieves"
  | Error f -> (
    match f.Fault.kind with
    | Fault.Resource_exhausted { resource; limit } ->
      check_bool "names the budget" true (resource = "context-switch budget");
      check_int "carries the limit" 3 limit;
      check_bool "not transient" false (Fault.is_transient f);
      check_bool "not modeled behavior" false (Fault.is_modeled f)
    | _ -> Alcotest.failf "wrong fault kind: %s" (Fault.to_string f)));
  check_bool "processes survive exhaustion" true
    (Scheduler.status sched ~name:"a" = Scheduler.Ready
    || Scheduler.status sched ~name:"a" = Scheduler.Finished);
  (* a fresh budget resumes from the saved state and completes *)
  check_bool "re-run completes" true (Scheduler.run ~quantum:700 sched = Ok ());
  check_int "result correct after resume" 1028 (Scheduler.result sched ~name:"a");
  check_int "other process too" 1028 (Scheduler.result sched ~name:"b")

let test_scheduler_spawn_many () =
  (* The array+name-table scheduler handles a serving-sized process
     count; names stay in spawn order and duplicate names keep
     first-spawn-wins lookup semantics. *)
  let sched = Scheduler.create () in
  let w = Hfi_workloads.Sightglass.find "fib2" in
  let n = 64 in
  for i = 0 to n - 1 do
    Scheduler.spawn_instance sched
      ~name:(Printf.sprintf "p%02d" i)
      (Hfi_wasm.Instance.instantiate ~strategy:Strategy.Bounds_checks w)
  done;
  check_int "all registered" n (List.length (Scheduler.processes sched));
  check_bool "spawn order preserved" true
    (Scheduler.processes sched
    = List.init n (fun i -> Printf.sprintf "p%02d" i));
  check_bool "run completed" true (Scheduler.run ~quantum:500 sched = Ok ());
  check_int "first result" 2584 (Scheduler.result sched ~name:"p00");
  check_int "last result" 2584 (Scheduler.result sched ~name:(Printf.sprintf "p%02d" (n - 1)))

(* --- End-to-end campaigns ----------------------------------------- *)

let small_chaos =
  { (Server.default Server.Chaos) with Server.tenants = 16; requests = 320; seed = 12 }

let total_terminal (c : Server.counters) =
  c.Server.ok + c.Server.retried_ok + c.Server.shed + c.Server.breaker_open
  + c.Server.rejected_unverified + c.Server.failed

let test_serve_chaos_classifies_every_request () =
  let r = Server.simulate ~jobs:1 small_chaos ~strategy:Strategy.Hfi in
  let c = r.Server.counters in
  check_bool "requests were generated" true (c.Server.requests > 0);
  check_int "every request in exactly one terminal outcome" c.Server.requests
    (total_terminal c);
  Server.check_total c;
  check_bool "hazards actually fired" true
    (c.Server.injected_faults > 0 && c.Server.poisoned_tenants > 0);
  check_bool "poison tenants are refused, not run" true
    (c.Server.rejected_unverified > 0);
  check_bool "breaker absorbed the poison tenants" true (c.Server.breaker_trips > 0);
  check_bool "retries recovered some requests" true
    (c.Server.retried_ok > 0 && c.Server.retries >= c.Server.retried_ok);
  check_bool "percentiles ordered" true
    (r.Server.p50_ms <= r.Server.p99_ms && r.Server.p99_ms <= r.Server.p999_ms);
  check_bool "goodput below offered under faults" true
    (r.Server.goodput_rps < r.Server.offered_rps)

let test_serve_jobs_determinism () =
  (* The sharded campaign is byte-identical for any worker count: same
     counters, same percentiles, same everything. *)
  let r1 = Server.simulate ~jobs:1 small_chaos ~strategy:Strategy.Hfi in
  let r4 = Server.simulate ~jobs:4 small_chaos ~strategy:Strategy.Hfi in
  check_bool "jobs=1 equals jobs=4" true (r1 = r4);
  let r1' = Server.simulate ~jobs:1 small_chaos ~strategy:Strategy.Hfi in
  check_bool "replayable from the seed" true (r1 = r1');
  let other =
    Server.simulate ~jobs:1 { small_chaos with Server.seed = 13 } ~strategy:Strategy.Hfi
  in
  check_bool "seed actually steers the campaign" true (r1 <> other)

let test_serve_degradation_under_budget_pressure () =
  (* One shard, HFI budget below the tenant count, long keep-alive:
     cold starts past the budget must degrade to bounds checks and the
     requests must still be served. *)
  let cfg =
    {
      (Server.default Server.Steady) with
      Server.tenants = 8;
      requests = 240;
      seed = 3;
      pool = { Instance_pool.keep_alive_s = 30.0; hfi_budget = 4 };
    }
  in
  let r = Server.simulate ~jobs:1 cfg ~strategy:Strategy.Hfi in
  let c = r.Server.counters in
  Server.check_total c;
  check_bool "degradation happened" true (c.Server.degraded > 0);
  check_bool "degraded requests still served" true (c.Server.failed = 0 && c.Server.ok > 0)

let test_serve_failed_outcome_reachable () =
  (* With no retry budget and a vicious crash rate, some requests must
     exhaust their attempts — and still be classified exactly once. *)
  let cfg =
    {
      small_chaos with
      Server.max_attempts = 1;
      rates = { Chaos.default with Chaos.sandbox_crash = 0.5 };
    }
  in
  let r = Server.simulate ~jobs:1 cfg ~strategy:Strategy.Hfi in
  let c = r.Server.counters in
  Server.check_total c;
  check_bool "failures surfaced" true (c.Server.failed > 0);
  check_int "no retries without budget" 0 c.Server.retries

let test_serve_check_total_catches_leaks () =
  check_bool "a leaked request is a simulator bug" true
    (match
       Server.check_total { Server.zero_counters with Server.requests = 1 }
     with
    | exception Fault.Simulator_bug _ -> true
    | () -> false)

let suite =
  [
    Alcotest.test_case "arrivals deterministic and ordered" `Quick
      test_arrival_deterministic_and_ordered;
    Alcotest.test_case "arrival rate calibration" `Quick test_arrival_rate_calibration;
    Alcotest.test_case "backoff bounds and jitter band" `Quick test_backoff_bounds;
    Alcotest.test_case "circuit breaker state machine" `Quick test_breaker_state_machine;
    Alcotest.test_case "pool warm/cold/degradation/eviction" `Quick
      test_pool_warm_cold_and_degradation;
    Alcotest.test_case "admission admits and caches verdicts" `Quick
      test_admission_gate_admits_and_caches;
    Alcotest.test_case "admission rejects poison before execution" `Quick
      test_admission_gate_rejects_poison_before_execution;
    Alcotest.test_case "scheduler budget fault is typed" `Quick
      test_scheduler_budget_exhaustion_is_typed;
    Alcotest.test_case "scheduler spawns serving-sized fleets" `Quick
      test_scheduler_spawn_many;
    Alcotest.test_case "serve_chaos classifies every request" `Quick
      test_serve_chaos_classifies_every_request;
    Alcotest.test_case "serving jobs=1 equals jobs=4" `Quick test_serve_jobs_determinism;
    Alcotest.test_case "HFI budget pressure degrades gracefully" `Quick
      test_serve_degradation_under_budget_pressure;
    Alcotest.test_case "failed outcome reachable and classified" `Quick
      test_serve_failed_outcome_reachable;
    Alcotest.test_case "outcome leak detection" `Quick test_serve_check_total_catches_leaks;
  ]
