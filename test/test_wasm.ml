open Hfi_isa
open Hfi_memory
open Hfi_core
open Hfi_pipeline
open Hfi_wasm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Sum the first [n] 8-byte words of the heap. *)
let sum_workload n =
  Instance.workload ~name:"sum" ~heap_bytes:65536
    ~init:(fun mem ~heap_base ->
      for i = 0 to n - 1 do
        Addr_space.poke mem ~addr:(heap_base + (8 * i)) ~bytes:8 (i + 1)
      done)
    (fun cg ->
      let open Instr in
      Codegen.emit cg (Mov (Reg.RAX, Imm 0));
      Codegen.emit cg (Mov (Reg.RCX, Imm 0));
      Codegen.label cg "loop";
      Codegen.load_heap_scaled cg W8 ~dst:Reg.RBX ~addr:Reg.RCX ~scale:8 ~offset:0;
      Codegen.emit cg (Alu (Add, Reg.RAX, Reg Reg.RBX));
      Codegen.emit cg (Alu (Add, Reg.RCX, Imm 1));
      Codegen.emit cg (Cmp (Reg.RCX, Imm n));
      Codegen.jcc cg Lt "loop")

let expected n = n * (n + 1) / 2

let test_sum_strategy strategy () =
  let inst = Instance.instantiate ~strategy (sum_workload 100) in
  let _, status = Instance.run_fast inst in
  check_bool "halted" true (status = Machine.Halted);
  check_int "sum" (expected 100) (Instance.result_rax inst)

let test_sum_cycle_engine strategy () =
  let inst = Instance.instantiate ~strategy (sum_workload 50) in
  let r = Instance.run_cycle inst in
  check_bool "halted" true (r.Cycle_engine.status = Machine.Halted);
  check_int "sum" (expected 50) (Instance.result_rax inst);
  check_bool "cycles positive" true (r.Cycle_engine.cycles > 0.0)

(* Out-of-bounds store at a given index; each strategy must contain it. *)
let oob_workload index =
  Instance.workload ~name:"oob" ~heap_bytes:65536 (fun cg ->
      let open Instr in
      Codegen.emit cg (Mov (Reg.RCX, Imm index));
      Codegen.store_heap cg W8 ~addr:Reg.RCX ~offset:0 ~src:(Imm 0xbad);
      Codegen.emit cg (Mov (Reg.RAX, Imm 42)))

let test_oob_traps strategy () =
  (* Heap is 64 KiB; index far outside (but within an i32, as compiled
     Wasm guarantees). *)
  let inst = Instance.instantiate ~strategy (oob_workload (10 * 1024 * 1024)) in
  let _, status = Instance.run_fast inst in
  match strategy with
  | Hfi_sfi.Strategy.Guard_pages ->
    (* Lands in the PROT_NONE guard: a hardware fault. *)
    check_bool "faulted" true
      (match status with Machine.Faulted (Msr.Hardware_fault _) -> true | _ -> false)
  | Hfi_sfi.Strategy.Bounds_checks ->
    (* Branches to the trap block: clean halt with the trap sentinel. *)
    check_bool "halted" true (status = Machine.Halted);
    check_int "trap sentinel" Codegen.trap_sentinel (Instance.result_rax inst)
  | Hfi_sfi.Strategy.Hfi ->
    check_bool "hfi bounds fault" true
      (match status with Machine.Faulted (Msr.Bounds_violation _) -> true | _ -> false)
  | Hfi_sfi.Strategy.Masking ->
    (* No trap: the access wraps into the sandbox (the §2 corruption
       semantics) and execution completes. *)
    check_bool "halted" true (status = Machine.Halted);
    check_int "completed" 42 (Instance.result_rax inst)

let test_masking_stays_inside () =
  (* The §2 point: masking converts OOB into in-sandbox corruption. *)
  let inst =
    Instance.instantiate ~strategy:Hfi_sfi.Strategy.Masking (oob_workload (10 * 1024 * 1024))
  in
  let _, status = Instance.run_fast inst in
  check_bool "no fault" true (status = Machine.Halted);
  (* The wrapped address is inside the heap: some heap byte got 0xbad. *)
  let mem = Kernel.address_space (Instance.kernel inst) in
  let base = Linear_memory.base (Instance.memory inst) in
  let wrapped = (10 * 1024 * 1024) land 0xffff in
  check_int "corruption landed in-sandbox" 0xbad
    (Addr_space.peek mem ~addr:(base + wrapped) ~bytes:8)

let test_strategies_agree () =
  let results =
    List.map
      (fun s ->
        let inst = Instance.instantiate ~strategy:s (sum_workload 64) in
        ignore (Instance.run_fast inst);
        Instance.result_rax inst)
      Hfi_sfi.Strategy.all
  in
  List.iter (fun r -> check_int "all strategies same result" (expected 64) r) results

let test_hfi_instance_enters_sandbox () =
  let inst = Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi (sum_workload 8) in
  ignore (Instance.run_fast inst);
  let st = Hfi.stats (Instance.hfi inst) in
  check_int "one enter" 1 st.Hfi.enters;
  check_int "one exit" 1 st.Hfi.exits;
  check_bool "hfi disabled at end" false (Hfi.enabled (Instance.hfi inst))

let test_code_size_ordering () =
  (* Static shape of the reference lowering: the optimizer would elide
     the provably-in-bounds checks of this tiny loop and erase exactly
     the size difference being asserted. *)
  let size s =
    Program.byte_size (Instance.build_program ~strategy:s ~optimize:false (sum_workload 10))
  in
  check_bool "bounds biggest" true (size Hfi_sfi.Strategy.Bounds_checks > size Hfi_sfi.Strategy.Guard_pages);
  check_bool "masking bigger than guard" true (size Hfi_sfi.Strategy.Masking > size Hfi_sfi.Strategy.Guard_pages)

let test_linear_memory_grow_costs () =
  let mk strategy =
    let mem = Addr_space.create () in
    let kernel = Kernel.create mem in
    let hfi = Hfi.create () in
    let lm =
      Linear_memory.reserve ~strategy ~kernel ~hfi ~max_bytes:(16 * 65536) ~initial_bytes:65536 ()
    in
    Kernel.reset_cycles kernel;
    for _ = 1 to 8 do
      Linear_memory.grow lm ~delta:65536
    done;
    Kernel.cycles kernel +. Linear_memory.grow_cycles lm
  in
  let guard = mk Hfi_sfi.Strategy.Guard_pages in
  let hfi = mk Hfi_sfi.Strategy.Hfi in
  check_bool "hfi growth much cheaper" true (guard > 5.0 *. hfi)

let test_hfi_grow_updates_region () =
  let mem = Addr_space.create () in
  let kernel = Kernel.create mem in
  let hfi = Hfi.create () in
  let lm =
    Linear_memory.reserve ~strategy:Hfi_sfi.Strategy.Hfi ~kernel ~hfi ~max_bytes:(4 * 65536)
      ~initial_bytes:65536 ()
  in
  (match Hfi.region hfi Layout.heap_region_slot with
  | Some (Hfi_iface.Explicit_data r) -> check_int "initial bound" 65536 r.Hfi_iface.bound
  | _ -> Alcotest.fail "region not configured");
  Linear_memory.grow lm ~delta:65536;
  match Hfi.region hfi Layout.heap_region_slot with
  | Some (Hfi_iface.Explicit_data r) -> check_int "grown bound" (2 * 65536) r.Hfi_iface.bound
  | _ -> Alcotest.fail "region lost"

let test_guard_footprint () =
  let mem = Addr_space.create () in
  let kernel = Kernel.create mem in
  let gib = 1 lsl 30 in
  let lm =
    Linear_memory.reserve ~strategy:Hfi_sfi.Strategy.Guard_pages ~kernel ~max_bytes:(4 * gib)
      ~initial_bytes:65536 ()
  in
  check_int "8 GiB footprint" (8 * gib) (Linear_memory.reserved_footprint lm);
  let mem2 = Addr_space.create () in
  let kernel2 = Kernel.create mem2 in
  let lm2 =
    Linear_memory.reserve ~strategy:Hfi_sfi.Strategy.Hfi ~kernel:kernel2 ~max_bytes:(4 * gib)
      ~initial_bytes:65536 ()
  in
  check_int "4 GiB footprint without guards" (4 * gib) (Linear_memory.reserved_footprint lm2)

let test_lifecycle_pool () =
  let mem = Addr_space.create () in
  let kernel = Kernel.create ~multithreaded:true mem in
  let pool =
    Lifecycle.create ~strategy:Hfi_sfi.Strategy.Hfi ~kernel ~slots:4 ~heap_bytes:(4 * 65536) ()
  in
  check_int "4 slots" 4 (Lifecycle.slot_count pool);
  check_int "dense stride" (4 * 65536) (Lifecycle.stride pool);
  for i = 0 to 3 do
    Lifecycle.instantiate pool i;
    Lifecycle.run_trivial pool i ~touch_pages:4
  done;
  check_bool "pages resident" true (Linear_memory.touched_pages (Lifecycle.memory pool 0) >= 4);
  Lifecycle.teardown_batched pool;
  check_int "discarded" 0 (Linear_memory.touched_pages (Lifecycle.memory pool 0))

let test_lifecycle_batched_cheaper_than_each_when_elided () =
  let run f =
    let mem = Addr_space.create () in
    let kernel = Kernel.create ~multithreaded:true mem in
    let pool =
      Lifecycle.create ~strategy:Hfi_sfi.Strategy.Hfi ~kernel ~slots:32 ~heap_bytes:(16 * 65536) ()
    in
    for i = 0 to 31 do
      Lifecycle.instantiate pool i;
      Lifecycle.run_trivial pool i ~touch_pages:4
    done;
    Kernel.reset_cycles kernel;
    f pool;
    Kernel.cycles kernel
  in
  let each = run Lifecycle.teardown_each in
  let batched = run Lifecycle.teardown_batched in
  check_bool "batching amortizes syscalls" true (batched < each)

(* Multi-memory (SS2): footprint and region multiplexing. *)

let test_multi_memory_footprint () =
  let gib = 1 lsl 30 in
  let mk strategy =
    let mem = Addr_space.create () in
    let kernel = Kernel.create mem in
    Multi_memory.create ~strategy ~kernel ~count:3 ~bytes_each:(16 * 65536) ()
  in
  let guard = Multi_memory.footprint (mk Hfi_sfi.Strategy.Guard_pages) in
  let hfi = Multi_memory.footprint (mk Hfi_sfi.Strategy.Hfi) in
  check_bool "each extra memory costs ~4GiB of guards" true (guard - hfi >= 3 * (4 * gib));
  check_int "hfi memories pack at real size" (3 * 16 * 65536) hfi

let test_multi_memory_multiplexing () =
  let mem = Addr_space.create () in
  let kernel = Kernel.create mem in
  let hfi = Hfi.create () in
  let mm =
    Multi_memory.create ~strategy:Hfi_sfi.Strategy.Hfi ~kernel ~hfi ~count:6
      ~bytes_each:65536 ()
  in
  (* First four bind without eviction. *)
  let r0 = Multi_memory.region_for mm ~memory:0 in
  let r1 = Multi_memory.region_for mm ~memory:1 in
  let r2 = Multi_memory.region_for mm ~memory:2 in
  let r3 = Multi_memory.region_for mm ~memory:3 in
  check_int "4 distinct regions" 4 (List.length (List.sort_uniq compare [ r0; r1; r2; r3 ]));
  check_int "no rebinds yet" 0 (Multi_memory.rebinds mm);
  (* A fifth memory evicts the least-recently-used binding (memory 0). *)
  let r4 = Multi_memory.region_for mm ~memory:4 in
  check_int "evicted memory 0's region" r0 r4;
  check_int "one rebind" 1 (Multi_memory.rebinds mm);
  (* Re-touching memory 0 now rebinds again. *)
  ignore (Multi_memory.region_for mm ~memory:0);
  check_int "two rebinds" 2 (Multi_memory.rebinds mm);
  (* The region register actually points at the bound memory. *)
  let r = Multi_memory.region_for mm ~memory:5 in
  (match Hfi.region hfi (Hfi_iface.slot_of_explicit_index r) with
  | Some (Hfi_iface.Explicit_data d) ->
    check_int "region base tracks memory 5" (Linear_memory.base (Multi_memory.memory mm 5))
      d.Hfi_iface.base_address
  | _ -> Alcotest.fail "region not bound");
  check_bool "hot binding is stable" true
    (Multi_memory.region_for mm ~memory:5 = r && Multi_memory.rebinds mm = 3)

let strategies_cases name f =
  List.map
    (fun s -> Alcotest.test_case (Printf.sprintf "%s (%s)" name (Hfi_sfi.Strategy.to_string s)) `Quick (f s))
    Hfi_sfi.Strategy.all

let suite =
  strategies_cases "sum workload" test_sum_strategy
  @ [
      Alcotest.test_case "sum on cycle engine (guard)" `Quick
        (test_sum_cycle_engine Hfi_sfi.Strategy.Guard_pages);
      Alcotest.test_case "sum on cycle engine (hfi)" `Quick
        (test_sum_cycle_engine Hfi_sfi.Strategy.Hfi);
    ]
  @ strategies_cases "oob containment" test_oob_traps
  @ [
      Alcotest.test_case "masking corrupts in-sandbox" `Quick test_masking_stays_inside;
      Alcotest.test_case "strategies agree on results" `Quick test_strategies_agree;
      Alcotest.test_case "hfi instance transitions" `Quick test_hfi_instance_enters_sandbox;
      Alcotest.test_case "code size ordering" `Quick test_code_size_ordering;
      Alcotest.test_case "grow cost: hfi vs mprotect" `Quick test_linear_memory_grow_costs;
      Alcotest.test_case "hfi grow updates region" `Quick test_hfi_grow_updates_region;
      Alcotest.test_case "guard footprint 8GiB" `Quick test_guard_footprint;
      Alcotest.test_case "lifecycle pool" `Quick test_lifecycle_pool;
      Alcotest.test_case "batched teardown amortizes" `Quick test_lifecycle_batched_cheaper_than_each_when_elided;
      Alcotest.test_case "multi-memory footprint" `Quick test_multi_memory_footprint;
      Alcotest.test_case "multi-memory multiplexing" `Quick test_multi_memory_multiplexing;
    ]

