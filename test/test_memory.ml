open Hfi_memory

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mib = 1024 * 1024

let test_mmap_load_store () =
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x10000 ~len:4096 Perm.rw;
  Addr_space.store m ~addr:0x10008 ~bytes:8 0xdeadbeef;
  check_int "load back" 0xdeadbeef (Addr_space.load m ~addr:0x10008 ~bytes:8);
  check_int "zero fill elsewhere" 0 (Addr_space.load m ~addr:0x10100 ~bytes:8)

let test_widths_little_endian () =
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x10000 ~len:4096 Perm.rw;
  Addr_space.store m ~addr:0x10000 ~bytes:4 0x11223344;
  check_int "byte 0 is LSB" 0x44 (Addr_space.load m ~addr:0x10000 ~bytes:1);
  check_int "byte 3 is MSB" 0x11 (Addr_space.load m ~addr:0x10003 ~bytes:1);
  check_int "2-byte" 0x3344 (Addr_space.load m ~addr:0x10000 ~bytes:2)

let test_unmapped_faults () =
  let m = Addr_space.create () in
  (try
     ignore (Addr_space.load m ~addr:0x5000 ~bytes:8);
     Alcotest.fail "expected fault"
   with Addr_space.Fault f ->
     check_bool "unmapped" true (f.reason = `Unmapped);
     check_int "addr" 0x5000 f.addr)

let test_protection_fault () =
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x10000 ~len:4096 Perm.r;
  check_int "read ok" 0 (Addr_space.load m ~addr:0x10000 ~bytes:8);
  try
    Addr_space.store m ~addr:0x10000 ~bytes:8 1;
    Alcotest.fail "expected protection fault"
  with Addr_space.Fault f -> check_bool "protection" true (f.reason = `Protection)

let test_guard_region_semantics () =
  (* The Wasm trick: heap then PROT_NONE guard; any access into the guard
     faults. *)
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x100000 ~len:(2 * mib) Perm.none;
  Addr_space.mprotect m ~addr:0x100000 ~len:mib Perm.rw;
  Addr_space.store m ~addr:0x100000 ~bytes:8 7;
  try
    ignore (Addr_space.load m ~addr:(0x100000 + mib) ~bytes:8);
    Alcotest.fail "guard should trap"
  with Addr_space.Fault f -> check_bool "guard protection" true (f.reason = `Protection)

let test_mprotect_hole_enomem () =
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x10000 ~len:4096 Perm.rw;
  (* hole at 0x11000 *)
  Addr_space.mmap m ~addr:0x12000 ~len:4096 Perm.rw;
  try
    Addr_space.mprotect m ~addr:0x10000 ~len:(3 * 4096) Perm.r;
    Alcotest.fail "expected ENOMEM-style fault"
  with Addr_space.Fault f -> check_bool "unmapped hole" true (f.reason = `Unmapped)

let test_mprotect_splits_vma () =
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x10000 ~len:(4 * 4096) Perm.rw;
  check_int "one vma" 1 (Addr_space.vma_count m);
  Addr_space.mprotect m ~addr:0x11000 ~len:4096 Perm.r;
  check_int "split into three" 3 (Addr_space.vma_count m);
  check_bool "middle read-only" true (Addr_space.perm_at m 0x11000 = Some Perm.r);
  check_bool "ends rw" true (Addr_space.perm_at m 0x13000 = Some Perm.rw)

let test_munmap_drops_data () =
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x10000 ~len:4096 Perm.rw;
  Addr_space.store m ~addr:0x10000 ~bytes:8 99;
  Addr_space.munmap m ~addr:0x10000 ~len:4096;
  check_bool "unmapped now" false (Addr_space.is_mapped m 0x10000);
  Addr_space.mmap m ~addr:0x10000 ~len:4096 Perm.rw;
  check_int "fresh zero" 0 (Addr_space.load m ~addr:0x10000 ~bytes:8)

let test_madvise_zeroes_but_keeps_mapping () =
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x10000 ~len:(2 * 4096) Perm.rw;
  Addr_space.store m ~addr:0x10000 ~bytes:8 42;
  check_int "resident 1" 1 (Addr_space.resident_pages_in m ~addr:0x10000 ~len:(2 * 4096));
  Addr_space.madvise_dontneed m ~addr:0x10000 ~len:(2 * 4096);
  check_int "resident 0" 0 (Addr_space.resident_pages_in m ~addr:0x10000 ~len:(2 * 4096));
  check_bool "still mapped" true (Addr_space.is_mapped m 0x10000);
  check_int "reads zero" 0 (Addr_space.load m ~addr:0x10000 ~bytes:8)

let test_reserved_accounting () =
  let m = Addr_space.create () in
  let gib = 1024 * mib in
  Addr_space.mmap m ~addr:(16 * gib) ~len:(8 * gib) Perm.none;
  check_int "8 GiB reserved" (8 * gib) (Addr_space.reserved_bytes m);
  Addr_space.munmap m ~addr:(16 * gib) ~len:(4 * gib);
  check_int "4 GiB left" (4 * gib) (Addr_space.reserved_bytes m)

let test_mmap_anywhere_no_overlap () =
  let m = Addr_space.create () in
  let a = Addr_space.mmap_anywhere m ~len:mib Perm.rw in
  let b = Addr_space.mmap_anywhere m ~len:mib Perm.rw in
  check_bool "disjoint" true (b >= a + mib || a >= b + mib);
  Addr_space.store m ~addr:a ~bytes:8 1;
  Addr_space.store m ~addr:b ~bytes:8 2;
  check_int "a intact" 1 (Addr_space.load m ~addr:a ~bytes:8)

let test_absent_pages_accounting () =
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x100000 ~len:(16 * 4096) Perm.rw;
  Addr_space.store m ~addr:0x100000 ~bytes:8 1;
  Addr_space.store m ~addr:0x104000 ~bytes:8 1;
  check_int "2 resident" 2 (Addr_space.resident_pages_in m ~addr:0x100000 ~len:(16 * 4096));
  check_int "14 absent" 14 (Addr_space.absent_pages_in m ~addr:0x100000 ~len:(16 * 4096))

let test_minor_fault_counting () =
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x10000 ~len:(4 * 4096) Perm.rw;
  let f0 = Addr_space.minor_faults m in
  Addr_space.store m ~addr:0x10000 ~bytes:8 1;
  Addr_space.store m ~addr:0x10008 ~bytes:8 2;
  (* same page *)
  Addr_space.store m ~addr:0x11000 ~bytes:8 3;
  check_int "2 first touches" 2 (Addr_space.minor_faults m - f0)

let test_peek_poke_bypass_perms () =
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x10000 ~len:4096 Perm.none;
  Addr_space.poke m ~addr:0x10000 ~bytes:8 77;
  check_int "peek" 77 (Addr_space.peek m ~addr:0x10000 ~bytes:8)

let test_blit_and_read_string () =
  let m = Addr_space.create () in
  Addr_space.mmap m ~addr:0x10000 ~len:4096 Perm.rw;
  Addr_space.blit_in m ~addr:0x10000 "hello";
  Alcotest.(check string) "roundtrip" "hello" (Addr_space.read_string m ~addr:0x10000 ~len:5)

let test_cache_hit_after_miss () =
  let c = Cache.create Cache.skylake_l1d in
  check_bool "first is miss" true (Cache.access c 0x1000 = `Miss);
  check_bool "second is hit" true (Cache.access c 0x1000 = `Hit);
  check_bool "same line hits" true (Cache.access c 0x1020 = `Hit);
  check_bool "different line misses" true (Cache.access c 0x1040 = `Miss)

let test_cache_lru_eviction () =
  let cfg = { Cache.size_bytes = 4 * 64; ways = 2; line_bytes = 64; hit_latency = 1; miss_latency = 10 } in
  let c = Cache.create cfg in
  (* 2 sets, 2 ways. Addresses mapping to set 0: multiples of 128. *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 128);
  ignore (Cache.access c 0);
  (* touch 0 so 128 is LRU *)
  ignore (Cache.access c 256);
  (* evicts 128 *)
  check_bool "0 still present" true (Cache.probe c 0);
  check_bool "128 evicted" false (Cache.probe c 128);
  check_bool "256 present" true (Cache.probe c 256)

let test_cache_flush () =
  let c = Cache.create Cache.skylake_l1d in
  ignore (Cache.access c 0x2000);
  check_bool "present" true (Cache.probe c 0x2000);
  Cache.flush_line c 0x2000;
  check_bool "flushed" false (Cache.probe c 0x2000);
  ignore (Cache.access c 0x3000);
  Cache.flush_all c;
  check_bool "all flushed" false (Cache.probe c 0x3000)

let test_cache_latency () =
  let c = Cache.create Cache.skylake_l1d in
  check_int "miss latency" 18 (Cache.timed_access c 0x9000);
  check_int "hit latency" 4 (Cache.timed_access c 0x9000)

let test_tlb () =
  let t = Tlb.create Tlb.skylake_dtlb in
  check_bool "cold miss" true (Tlb.access t 0x10000 = `Miss);
  check_bool "warm hit" true (Tlb.access t 0x10008 = `Hit);
  Tlb.flush_all t;
  check_bool "miss after flush" true (Tlb.access t 0x10000 = `Miss)

let test_kernel_file_ops () =
  let m = Addr_space.create () in
  let k = Kernel.create m in
  Addr_space.mmap m ~addr:0x20000 ~len:4096 Perm.rw;
  Kernel.add_file k ~id:1 ~content:"file contents here";
  let fd = Kernel.sys_open k ~id:1 in
  check_bool "fd valid" true (fd >= 3);
  let n = Kernel.sys_read k ~fd ~buf:0x20000 ~len:4 in
  check_int "read 4" 4 n;
  Alcotest.(check string) "data" "file" (Addr_space.read_string m ~addr:0x20000 ~len:4);
  let n2 = Kernel.sys_read k ~fd ~buf:0x20000 ~len:100 in
  check_int "rest" (String.length "file contents here" - 4) n2;
  check_int "close ok" 0 (Kernel.sys_close k ~fd);
  check_int "double close fails" (-1) (Kernel.sys_close k ~fd)

let test_kernel_open_missing () =
  let k = Kernel.create (Addr_space.create ()) in
  check_int "missing file" (-1) (Kernel.sys_open k ~id:99)

let test_kernel_costs_accumulate () =
  let k = Kernel.create (Addr_space.create ()) in
  Kernel.add_file k ~id:1 ~content:"x";
  let c0 = Kernel.cycles k in
  ignore (Kernel.sys_open k ~id:1);
  check_bool "open charged" true (Kernel.cycles k > c0)

let test_kernel_seccomp_overhead () =
  let mk seccomp =
    let k = Kernel.create (Addr_space.create ()) in
    Kernel.add_file k ~id:1 ~content:"y";
    Kernel.set_seccomp k seccomp;
    ignore (Kernel.dispatch k ~number:(Hfi_isa.Syscall.number Hfi_isa.Syscall.Getpid) ~arg0:0 ~arg1:0 ~arg2:0);
    Kernel.cycles k
  in
  let plain = mk false and filtered = mk true in
  check_bool "seccomp costs more" true (filtered > plain);
  check_int "delta is the filter cost"
    Cost.seccomp_filter_per_syscall
    (int_of_float (filtered -. plain))

let test_kernel_madvise_cost_scales_with_absent () =
  let m = Addr_space.create () in
  let k = Kernel.create m in
  (* Two regions, same resident count, different absent-page spans. *)
  Addr_space.mmap m ~addr:0x100000 ~len:(1024 * 4096) Perm.rw;
  Addr_space.store m ~addr:0x100000 ~bytes:8 1;
  Kernel.reset_cycles k;
  Kernel.sys_madvise_dontneed k ~addr:0x100000 ~len:4096;
  let small = Kernel.cycles k in
  Addr_space.store m ~addr:0x100000 ~bytes:8 1;
  Kernel.reset_cycles k;
  Kernel.sys_madvise_dontneed k ~addr:0x100000 ~len:(1024 * 4096);
  let large = Kernel.cycles k in
  check_bool "absent-page walk costs" true (large > small)

let test_kernel_shootdown_multithreaded () =
  let cost_of multithreaded =
    let m = Addr_space.create () in
    let k = Kernel.create ~multithreaded m in
    Addr_space.mmap m ~addr:0x10000 ~len:4096 Perm.rw;
    Kernel.reset_cycles k;
    Kernel.sys_mprotect k ~addr:0x10000 ~len:4096 Perm.r;
    Kernel.cycles k
  in
  check_bool "shootdown charged" true (cost_of true > cost_of false)

let test_kernel_syscall_dispatch () =
  let m = Addr_space.create () in
  let k = Kernel.create m in
  let pid = Kernel.dispatch k ~number:(Hfi_isa.Syscall.number Hfi_isa.Syscall.Getpid) ~arg0:0 ~arg1:0 ~arg2:0 in
  check_int "getpid" 4242 pid;
  check_int "bad syscall" (-1) (Kernel.dispatch k ~number:9999 ~arg0:0 ~arg1:0 ~arg2:0);
  check_int "2 syscalls" 2 (Kernel.syscall_count k)

let suite =
  [
    Alcotest.test_case "mmap/load/store" `Quick test_mmap_load_store;
    Alcotest.test_case "little-endian widths" `Quick test_widths_little_endian;
    Alcotest.test_case "unmapped faults" `Quick test_unmapped_faults;
    Alcotest.test_case "protection fault" `Quick test_protection_fault;
    Alcotest.test_case "guard region traps" `Quick test_guard_region_semantics;
    Alcotest.test_case "mprotect hole = ENOMEM" `Quick test_mprotect_hole_enomem;
    Alcotest.test_case "mprotect splits VMAs" `Quick test_mprotect_splits_vma;
    Alcotest.test_case "munmap drops data" `Quick test_munmap_drops_data;
    Alcotest.test_case "madvise semantics" `Quick test_madvise_zeroes_but_keeps_mapping;
    Alcotest.test_case "reserved VA accounting" `Quick test_reserved_accounting;
    Alcotest.test_case "mmap_anywhere non-overlap" `Quick test_mmap_anywhere_no_overlap;
    Alcotest.test_case "absent page accounting" `Quick test_absent_pages_accounting;
    Alcotest.test_case "minor fault counting" `Quick test_minor_fault_counting;
    Alcotest.test_case "peek/poke bypass" `Quick test_peek_poke_bypass_perms;
    Alcotest.test_case "blit/read string" `Quick test_blit_and_read_string;
    Alcotest.test_case "cache hit after miss" `Quick test_cache_hit_after_miss;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache flush" `Quick test_cache_flush;
    Alcotest.test_case "cache latencies" `Quick test_cache_latency;
    Alcotest.test_case "tlb" `Quick test_tlb;
    Alcotest.test_case "kernel file ops" `Quick test_kernel_file_ops;
    Alcotest.test_case "kernel open missing" `Quick test_kernel_open_missing;
    Alcotest.test_case "kernel costs" `Quick test_kernel_costs_accumulate;
    Alcotest.test_case "kernel seccomp overhead" `Quick test_kernel_seccomp_overhead;
    Alcotest.test_case "madvise absent-page cost" `Quick test_kernel_madvise_cost_scales_with_absent;
    Alcotest.test_case "tlb shootdown cost" `Quick test_kernel_shootdown_multithreaded;
    Alcotest.test_case "syscall dispatch" `Quick test_kernel_syscall_dispatch;
  ]
