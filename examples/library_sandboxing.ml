(* Library sandboxing, RLBox-style (SS6.2): a renderer calls into an
   untrusted image-decoding library many times — one sandbox invocation
   per pixel row — and compares the three Wasm isolation mechanisms.

   This is the Fig. 4 scenario as an application: the HFI build pays two
   serialized transitions per row but decodes fastest overall because
   hmov removes the per-access software checks and the reserved heap
   registers.

   Run with: dune exec examples/library_sandboxing.exe *)

module Firefox = Hfi_workloads.Firefox
module Instance = Hfi_wasm.Instance

let decode strategy =
  let w = Firefox.image_decode Firefox.R480p Firefox.Default in
  let inst = Instance.instantiate ~strategy w in
  let cycles, status = Instance.run_fast inst in
  assert (status = Hfi_pipeline.Machine.Halted);
  (cycles, Instance.result_rax inst, Hfi_core.Hfi.stats (Instance.hfi inst))

let () =
  print_endline "-- sandboxed image decode (480p, default quality), per-row transitions --";
  let rows = Firefox.image_rows Firefox.R480p in
  let guard_cycles, guard_result, _ = decode Hfi_sfi.Strategy.Guard_pages in
  let bounds_cycles, bounds_result, _ = decode Hfi_sfi.Strategy.Bounds_checks in
  let hfi_cycles, hfi_result, hfi_stats = decode Hfi_sfi.Strategy.Hfi in
  ignore (guard_result, bounds_result);
  Hfi_util.Table.print
    ~header:[ "mechanism"; "cycles"; "vs guard pages" ]
    [
      [ "guard pages"; Hfi_util.Units.pp_cycles guard_cycles; "100.0%" ];
      [ "bounds checks"; Hfi_util.Units.pp_cycles bounds_cycles;
        Printf.sprintf "%.1f%%" (bounds_cycles /. guard_cycles *. 100.0) ];
      [ "HFI"; Hfi_util.Units.pp_cycles hfi_cycles;
        Printf.sprintf "%.1f%%" (hfi_cycles /. guard_cycles *. 100.0) ];
    ];
  Printf.printf
    "\nHFI made %d serialized sandbox entries (one per image row, %d rows) —\n\
     the amortization the paper measures in SS6.2.\n"
    hfi_stats.Hfi_core.Hfi.enters rows;
  Printf.printf "pixel checksum (HFI build): %d\n" hfi_result
