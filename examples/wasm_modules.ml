(* Compiling real (mini-)Wasm modules: build a module in the IR, validate
   it, interpret it as a reference, then compile and run it under every
   isolation strategy — the full wasm2c-style pipeline of SS5.1.

   The module computes a checksum over a CSV-ish data segment: function 0
   drives the loop, function 1 classifies one byte (call/return across
   Wasm functions exercises frames and the machine stack).

   Run with: dune exec examples/wasm_modules.exe *)

open Hfi_wasm
open Wasm_ir

let classifier =
  (* classify(byte) = 3 if comma, 5 if newline, 1 otherwise *)
  func ~name:"classify" ~params:1 ~results:1
    [
      Local_get 0;
      Const (Char.code ',');
      Relop Eq;
      If ([ Const 3; Return ], []);
      Local_get 0;
      Const (Char.code '\n');
      Relop Eq;
      If ([ Const 5; Return ], []);
      Const 1;
    ]

let driver len =
  func ~name:"main" ~locals:2 ~results:1
    [
      Const 0;
      Local_set 0;
      (* i *)
      Const 0;
      Local_set 1;
      (* acc *)
      Block
        [
          Loop
            [
              Local_get 0;
              Const len;
              Relop Ge_s;
              Br_if 1;
              (* acc += classify(mem[i]) * (i+1) *)
              Local_get 1;
              Local_get 0;
              Load { bytes = 1; offset = 0 };
              Call 1;
              Local_get 0;
              Const 1;
              Binop Add;
              Binop Mul;
              Binop Add;
              Local_set 1;
              Local_get 0;
              Const 1;
              Binop Add;
              Local_set 0;
              Br 0;
            ];
        ];
      Local_get 1;
    ]

let () =
  let text = "alpha,beta,gamma\n12,34,56\nx,y\n" in
  let m =
    module_ ~start:0 ~memory_pages:1
      ~data:[ (0, text) ]
      [| driver (String.length text); classifier |]
  in
  print_endline "-- the module (WAT-ish) --";
  Format.printf "%a@." Wasm_ir.pp_module m;
  (match Wasm_validate.validate m with
  | Ok () -> print_endline "validation: ok"
  | Error e -> Format.printf "validation failed: %a@." Wasm_validate.pp_error e);
  let reference = Wasm_interp.run m in
  Format.printf "reference interpreter: %a@." Wasm_interp.pp_outcome reference;
  print_endline "-- compiled under each isolation strategy --";
  List.iter
    (fun s ->
      let outcome, cycles = Wasm_compile.run ~strategy:s m in
      Format.printf "  %-14s %a (%s cycles)@." (Hfi_sfi.Strategy.to_string s)
        Wasm_interp.pp_outcome outcome
        (Hfi_util.Units.pp_cycles cycles))
    Hfi_sfi.Strategy.all;
  print_endline "all strategies agree with the reference interpreter."
