(* Native sandboxing (SS3.3, SS6.4): run unmodified native code — no
   recompilation, no instrumentation — inside HFI's native sandbox, with
   complete mediation of its system calls.

   Three payloads demonstrate the security surface:
   1. a well-behaved payload whose file I/O is transparently interposed
      (every syscall becomes a jump to the runtime's exit handler, which
      performs it and hfi_reenters);
   2. a payload that tries to read memory outside its regions — an HFI
      bounds violation delivered to the runtime as a signal;
   3. a payload that tries to reconfigure HFI's region registers from
      inside the (locked) native sandbox.

   Run with: dune exec examples/native_sandboxing.exe *)

open Hfi_isa
module Ns = Hfi_runtime.Native_sandbox

let well_behaved b =
  let open Instr in
  let e = Program.Asm.emit b in
  (* read the config file and sum its bytes *)
  e (Mov (Reg.RAX, Imm (Syscall.number Syscall.Open)));
  e (Mov (Reg.RDI, Imm 1));
  e Syscall;
  e (Mov (Reg.R8, Reg Reg.RAX));
  e (Mov (Reg.RAX, Imm (Syscall.number Syscall.Read)));
  e (Mov (Reg.RDI, Reg Reg.R8));
  e (Mov (Reg.RSI, Imm Ns.data_base));
  e (Mov (Reg.RDX, Imm 16));
  e Syscall;
  e (Mov (Reg.RAX, Imm (Syscall.number Syscall.Close)));
  e (Mov (Reg.RDI, Reg Reg.R8));
  e Syscall;
  e (Mov (Reg.RAX, Imm 0));
  e (Mov (Reg.RCX, Imm 0));
  Program.Asm.label b "sum";
  e (Load (W1, Reg.R9, Instr.mem ~index:Reg.RCX ~disp:Ns.data_base ()));
  e (Alu (Add, Reg.RAX, Reg Reg.R9));
  e (Alu (Add, Reg.RCX, Imm 1));
  e (Cmp (Reg.RCX, Imm 16));
  Program.Asm.jcc b Lt "sum";
  e Hfi_exit

let memory_snooper b =
  let open Instr in
  let e = Program.Asm.emit b in
  (* try to read the host's memory at 16 MiB — outside every region *)
  e (Load (W8, Reg.RAX, Instr.mem ~disp:0x100_0000 ()));
  e Hfi_exit

let register_tamperer b =
  let open Instr in
  let e = Program.Asm.emit b in
  (* try to widen its own data region — locked in a native sandbox *)
  e
    (Hfi_set_region
       ( 2,
         Hfi_iface.Implicit_data
           { base_prefix = 0; lsb_mask = (1 lsl 40) - 1; permission_read = true; permission_write = true } ));
  e Hfi_exit

let run name payload =
  Printf.printf "-- payload: %s --\n" name;
  let t = Ns.build ~payload () in
  Hfi_memory.Kernel.add_file (Ns.kernel t) ~id:1 ~content:"settings=secure\n";
  let cycles, status = Ns.run t in
  let st = Hfi_core.Hfi.stats (Ns.hfi t) in
  (match status with
  | Hfi_pipeline.Machine.Halted ->
    Printf.printf "finished: rax=%d, %d syscalls interposed, %d violations, %s cycles\n"
      (Hfi_pipeline.Machine.get_reg (Ns.machine t) Reg.RAX)
      st.Hfi_core.Hfi.syscall_traps st.Hfi_core.Hfi.violations
      (Hfi_util.Units.pp_cycles cycles)
  | Hfi_pipeline.Machine.Faulted reason ->
    Printf.printf "terminated by runtime: %s (%d violations recorded)\n"
      (Hfi_core.Msr.to_string reason) st.Hfi_core.Hfi.violations
  | Hfi_pipeline.Machine.Running -> print_endline "still running?");
  print_newline ()

let () =
  run "well-behaved file reader" well_behaved;
  run "memory snooper (reads host memory)" memory_snooper;
  run "register tamperer (hfi_set_region in native sandbox)" register_tamperer
