(* A miniature FaaS platform (SS3.3, SS6.3): one process, many tenant
   sandboxes, HFI isolating them with guard-free adjacent heaps.

   The platform instantiates a pool of sandbox slots, serves a burst of
   requests across tenants (each request runs a real kernel inside a
   fresh instance), then reclaims all dead instances with one batched
   madvise — the lifecycle optimization of SS6.3.1. It also shows the
   address-space ledger: with guards elided, reservations equal the
   heaps' true sizes.

   Run with: dune exec examples/faas_platform.exe *)

module Lifecycle = Hfi_wasm.Lifecycle
module Lm = Hfi_wasm.Linear_memory

let tenants = [ "alice"; "bob"; "carol"; "dave" ]
let slots = 16
let heap_bytes = 4 * 65536

let () =
  print_endline "-- miniature HFI FaaS platform --";
  let mem = Hfi_memory.Addr_space.create () in
  let kernel = Hfi_memory.Kernel.create ~multithreaded:true mem in
  let pool = Lifecycle.create ~strategy:Hfi_sfi.Strategy.Hfi ~kernel ~slots ~heap_bytes () in
  Printf.printf "pool: %d slots x %s heap, stride %s (no guard regions)\n" slots
    (Hfi_util.Units.pp_bytes heap_bytes)
    (Hfi_util.Units.pp_bytes (Lifecycle.stride pool));
  Printf.printf "address space reserved: %s (guard pages would need %s)\n"
    (Hfi_util.Units.pp_bytes (Lifecycle.reserved_bytes pool))
    (Hfi_util.Units.pp_bytes
       (slots * (heap_bytes + Hfi_sfi.Strategy.guard_region_bytes Hfi_sfi.Strategy.Guard_pages)));

  (* Serve a burst: each request instantiates a slot, runs a tenant
     function (a real Sightglass kernel) in its own HFI sandbox, and
     leaves the instance dead for batch reclamation. *)
  let kernels = [ "sieve"; "base64"; "ratelimit"; "minicsv" ] in
  let lat = Hfi_util.Stats.Latency.create () in
  List.iteri
    (fun i tenant ->
      let kernel_name = List.nth kernels (i mod List.length kernels) in
      let w = Hfi_workloads.Sightglass.find kernel_name in
      let slot = i mod slots in
      Lifecycle.instantiate pool slot;
      let inst = Hfi_wasm.Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi w in
      let cycles, status = Hfi_wasm.Instance.run_fast inst in
      assert (status = Hfi_pipeline.Machine.Halted);
      let us = Hfi_util.Units.cycles_to_us cycles in
      Hfi_util.Stats.Latency.add lat us;
      Printf.printf "request %d (tenant %-6s %-9s slot %2d): %7.1f us, result %d\n" i tenant
        kernel_name slot us
        (Hfi_wasm.Instance.result_rax inst))
    (List.concat_map (fun t -> List.map (fun _ -> t) [ 1; 2; 3 ]) tenants);
  Printf.printf "served %d requests, mean %.1f us, p99 %.1f us\n"
    (Hfi_util.Stats.Latency.count lat)
    (Hfi_util.Stats.Latency.mean lat)
    (Hfi_util.Stats.Latency.tail lat);

  (* Batch-reclaim all dead instances: one madvise across adjacent heaps. *)
  Hfi_memory.Kernel.reset_cycles kernel;
  Lifecycle.teardown_batched pool;
  Printf.printf "batched teardown of the whole pool: %.1f us of kernel time (one madvise)\n"
    (Hfi_util.Units.cycles_to_us (Hfi_memory.Kernel.cycles kernel));
  print_endline "platform shut down."
