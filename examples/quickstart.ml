(* Quickstart: sandbox a small computation with HFI.

   This walks the whole public API once:
   1. write a workload against the wasm2c-style code generator;
   2. instantiate it under the HFI strategy — the harness configures the
      code/stack/globals/heap regions and wraps the body in a serialized
      hfi_enter/hfi_exit pair (SS3.3);
   3. run it on the fast engine and inspect results and HFI statistics;
   4. watch an out-of-bounds access trap with a precise HFI fault.

   Run with: dune exec examples/quickstart.exe *)

open Hfi_isa
module Cg = Hfi_wasm.Codegen
module Instance = Hfi_wasm.Instance

(* A workload: sum of squares of the first 1000 integers, staged through
   the sandbox heap. *)
let sum_of_squares =
  Instance.workload ~name:"sum-of-squares" (fun cg ->
      let open Instr in
      Cg.emit cg (Mov (Reg.RAX, Imm 0));
      Cg.emit cg (Mov (Reg.RCX, Imm 1));
      Cg.label cg "loop";
      (* square into R8 *)
      Cg.emit cg (Mov (Reg.R8, Reg Reg.RCX));
      Cg.emit cg (Alu (Mul, Reg.R8, Reg Reg.RCX));
      (* stage through the heap: store then reload via hmov/region 0 *)
      Cg.store_heap cg W8 ~addr:Reg.RCX ~offset:0 ~src:(Reg Reg.R8);
      Cg.load_heap cg W8 ~dst:Reg.R9 ~addr:Reg.RCX ~offset:0;
      Cg.emit cg (Alu (Add, Reg.RAX, Reg Reg.R9));
      Cg.emit cg (Alu (Add, Reg.RCX, Imm 1));
      Cg.emit cg (Cmp (Reg.RCX, Imm 1001));
      Cg.jcc cg Lt "loop")

let () =
  print_endline "-- quickstart: running sum-of-squares inside an HFI sandbox --";
  let inst = Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi sum_of_squares in
  let cycles, status = Instance.run_fast inst in
  assert (status = Hfi_pipeline.Machine.Halted);
  Printf.printf "result: %d (expected %d)\n" (Instance.result_rax inst) (1000 * 1001 * 2001 / 6);
  Printf.printf "modeled cycles: %s (%s at 3.3 GHz)\n"
    (Hfi_util.Units.pp_cycles cycles)
    (Hfi_util.Units.pp_time_s (Hfi_util.Units.cycles_to_seconds cycles));
  let st = Hfi_core.Hfi.stats (Instance.hfi inst) in
  Printf.printf "sandbox transitions: %d enter, %d exit; region updates: %d\n"
    st.Hfi_core.Hfi.enters st.Hfi_core.Hfi.exits st.Hfi_core.Hfi.region_updates;

  print_endline "\n-- the same sandbox contains an out-of-bounds write --";
  let wild =
    Instance.workload ~name:"wild-write" (fun cg ->
        let open Instr in
        (* index far past the 64 KiB heap: hmov's bounds check traps *)
        Cg.emit cg (Mov (Reg.RCX, Imm (100 * 1024 * 1024)));
        Cg.store_heap cg W8 ~addr:Reg.RCX ~offset:0 ~src:(Imm 0xbad))
  in
  let inst = Instance.instantiate ~strategy:Hfi_sfi.Strategy.Hfi wild in
  (match Instance.run_fast inst with
  | _, Hfi_pipeline.Machine.Faulted reason ->
    Printf.printf "trapped as expected: %s\n" (Hfi_core.Msr.to_string reason)
  | _ -> failwith "the wild write should have trapped");
  print_endline "quickstart done."
